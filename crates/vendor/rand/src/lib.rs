//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! with uniform sampling for the primitive types the simulation draws,
//! and [`seq::SliceRandom::shuffle`]. Uniform `f64` conversion follows
//! rand's `Standard` distribution (53 high bits → `[0, 1)`), and
//! `seed_from_u64` follows rand_core's PCG-based default expansion, so a
//! future switch to the real crates preserves stream semantics.

/// Core random number generation trait.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable RNG, with rand_core's default `u64` seed expansion.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with the same PCG-style
    /// mixer rand_core 0.6 uses.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sample {
    /// Types that can be drawn uniformly by [`super::Rng::gen`].
    pub trait Standard {
        /// Draw one value.
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            // rand's Standard for f64: 53 random bits scaled to [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for u32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for u64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for usize {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Standard for bool {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }
}

pub use sample::Standard;

/// Extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value uniformly (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Uniform integer in `[0, bound)` via rejection sampling (unbiased).
    #[doc(hidden)]
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Widening-multiply rejection (Lemire).
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle (matches rand 0.8's algorithm: iterate
        /// from the back, swapping with a uniform index at or below).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_below((i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_below(self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // splitmix64 step — good enough to exercise the adapters.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_below_is_in_range() {
        let mut rng = Counter(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Counter(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng).is_some());
    }
}
