//! Benchmark dataset definitions.

use ftts_model::{normal, stream, ProblemSpec, StepProfile};
use serde::{Deserialize, Serialize};

/// A benchmark the paper evaluates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// AIME 2024 — hard competition math (30 problems).
    Aime2024,
    /// AMC 2023 — broader-difficulty competition math (40 problems).
    Amc2023,
    /// MATH-500 — the motivation-study benchmark (Fig. 3).
    Math500,
    /// HumanEval — code generation (Fig. 15).
    HumanEval,
}

impl Dataset {
    /// All datasets.
    pub fn all() -> [Dataset; 4] {
        [
            Dataset::Aime2024,
            Dataset::Amc2023,
            Dataset::Math500,
            Dataset::HumanEval,
        ]
    }

    /// Official test-set size of the real benchmark.
    pub fn official_size(self) -> usize {
        match self {
            Dataset::Aime2024 => 30,
            Dataset::Amc2023 => 40,
            Dataset::Math500 => 500,
            Dataset::HumanEval => 164,
        }
    }

    /// Mean and spread of problem difficulty, in quality-logit units.
    /// Calibrated against the paper's accuracy bands (see EXPERIMENTS.md).
    fn difficulty_params(self) -> (f64, f64) {
        match self {
            Dataset::Aime2024 => (3.10, 0.50),
            Dataset::Amc2023 => (1.70, 0.60),
            Dataset::Math500 => (1.50, 0.70),
            Dataset::HumanEval => (1.90, 0.50),
        }
    }

    /// Mean and spread of prompt lengths, in tokens.
    fn prompt_params(self) -> (f64, f64) {
        match self {
            Dataset::Aime2024 => (140.0, 30.0),
            Dataset::Amc2023 => (110.0, 25.0),
            Dataset::Math500 => (100.0, 25.0),
            Dataset::HumanEval => (180.0, 40.0),
        }
    }

    /// Size of the answer space for voting purposes.
    fn answer_space(self) -> u32 {
        match self {
            // AIME answers are integers 0–999; AMC/MATH effective answer
            // spaces are similar in size once normalized.
            Dataset::Aime2024 => 1000,
            Dataset::Amc2023 => 800,
            Dataset::Math500 => 500,
            // Code either passes or fails tests, but distinct wrong
            // programs cluster into failure modes.
            Dataset::HumanEval => 50,
        }
    }

    /// Zipf concentration of wrong answers onto common distractors.
    /// Real competition problems have *attractive* wrong answers, so
    /// wrong paths cluster and majority voting can lose.
    fn decoy_concentration(self) -> f64 {
        match self {
            Dataset::Aime2024 => 1.80,
            Dataset::Amc2023 => 2.00,
            Dataset::Math500 => 1.90,
            Dataset::HumanEval => 2.50,
        }
    }

    /// Step-length / depth profile for this dataset.
    pub fn step_profile(self) -> StepProfile {
        match self {
            Dataset::Aime2024 => StepProfile::aime(),
            Dataset::Amc2023 => StepProfile::amc(),
            Dataset::Math500 => StepProfile::math500(),
            Dataset::HumanEval => StepProfile::humaneval(),
        }
    }

    /// Short display label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Dataset::Aime2024 => "AIME",
            Dataset::Amc2023 => "AMC",
            Dataset::Math500 => "MATH-500",
            Dataset::HumanEval => "HumanEval",
        }
    }

    /// Generate `n` deterministic problems for this dataset.
    ///
    /// The same `(dataset, seed)` always yields the same problems, and
    /// problem `i` is independent of `n` (prefix-stable), so experiments
    /// with different subset sizes stay comparable.
    pub fn problems(self, n: usize, seed: u64) -> Vec<ProblemSpec> {
        let (d_mu, d_sigma) = self.difficulty_params();
        let (p_mu, p_sigma) = self.prompt_params();
        let tag = self as u64 + 0x0DA7_A5E7;
        (0..n as u64)
            .map(|i| {
                let mut rng = stream(&[seed, tag, i]);
                let difficulty = normal(&mut rng, d_mu, d_sigma).max(0.05);
                let prompt_tokens =
                    normal(&mut rng, p_mu, p_sigma).round().clamp(32.0, 512.0) as u64;
                ProblemSpec {
                    seed: ftts_model::mix64(seed, ftts_model::mix64(tag, i)),
                    difficulty,
                    prompt_tokens,
                    answer_space: self.answer_space(),
                    decoy_concentration: self.decoy_concentration(),
                    steps: self.step_profile(),
                }
            })
            .collect()
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problems_are_deterministic_and_prefix_stable() {
        let a = Dataset::Aime2024.problems(10, 7);
        let b = Dataset::Aime2024.problems(10, 7);
        assert_eq!(a, b);
        let prefix = Dataset::Aime2024.problems(4, 7);
        assert_eq!(&a[..4], &prefix[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::Amc2023.problems(5, 1);
        let b = Dataset::Amc2023.problems(5, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn datasets_have_distinct_problem_seeds() {
        let a = Dataset::Aime2024.problems(5, 1);
        let b = Dataset::Amc2023.problems(5, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x.seed, y.seed);
        }
    }

    #[test]
    fn aime_is_hardest_math_dataset() {
        let mean = |d: Dataset| {
            let ps = d.problems(200, 3);
            ps.iter().map(|p| p.difficulty).sum::<f64>() / ps.len() as f64
        };
        let aime = mean(Dataset::Aime2024);
        let amc = mean(Dataset::Amc2023);
        let math = mean(Dataset::Math500);
        assert!(
            aime > amc && aime > math,
            "AIME must be hardest: aime {aime}, math {math}, amc {amc}"
        );
    }

    #[test]
    fn difficulty_is_positive() {
        for d in Dataset::all() {
            for p in d.problems(100, 11) {
                assert!(p.difficulty > 0.0);
                assert!((32..=512).contains(&p.prompt_tokens));
            }
        }
    }

    #[test]
    fn official_sizes_match_the_benchmarks() {
        assert_eq!(Dataset::Aime2024.official_size(), 30);
        assert_eq!(Dataset::Amc2023.official_size(), 40);
        assert_eq!(Dataset::Math500.official_size(), 500);
        assert_eq!(Dataset::HumanEval.official_size(), 164);
    }

    #[test]
    fn labels_are_figure_ready() {
        assert_eq!(Dataset::Aime2024.to_string(), "AIME");
        assert_eq!(Dataset::HumanEval.label(), "HumanEval");
    }
}
