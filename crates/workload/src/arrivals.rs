//! Request arrival patterns.
//!
//! The paper's headline experiments use batch size 1 ("interactive edge
//! scenarios", Sec. 6.1), but the two-phase preemptible scheduler
//! (Sec. 4.1.2) is defined by how it reacts to *new requests arriving
//! mid-speculation*. These generators produce arrival timelines to
//! exercise that path.

use ftts_model::{stream, ProblemSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One request arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestArrival {
    /// Arrival time in seconds since experiment start.
    pub at: f64,
    /// The problem the request asks to solve.
    pub problem: ProblemSpec,
}

/// How requests arrive at the serving system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// A single request at t=0 (the paper's interactive setting).
    Interactive,
    /// Poisson arrivals with the given mean rate (requests/second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate: f64,
    },
    /// All requests arrive at once at the given time.
    Burst {
        /// Burst instant in seconds.
        at: f64,
    },
    /// Evenly spaced arrivals: request `i` arrives at `i * interval`.
    /// With `interval` below the per-request service time this offers
    /// sustained load above capacity — the overload regime where
    /// request-level batching and admission control decide goodput.
    Uniform {
        /// Seconds between consecutive arrivals (may be zero).
        interval: f64,
    },
}

impl ArrivalPattern {
    /// Produce an arrival timeline for `problems`, deterministically from
    /// `seed`. Arrival times are non-decreasing.
    pub fn schedule(self, problems: &[ProblemSpec], seed: u64) -> Vec<RequestArrival> {
        match self {
            ArrivalPattern::Interactive => problems
                .iter()
                .enumerate()
                .map(|(i, p)| RequestArrival {
                    at: i as f64 * 1e9,
                    problem: *p,
                })
                .collect(),
            ArrivalPattern::Poisson { rate } => {
                assert!(rate > 0.0, "poisson rate must be positive");
                let mut rng = stream(&[seed, 0xA881_7A15]);
                let mut t = 0.0;
                problems
                    .iter()
                    .map(|p| {
                        let u: f64 = rng.gen::<f64>().max(1e-12);
                        t += -u.ln() / rate;
                        RequestArrival { at: t, problem: *p }
                    })
                    .collect()
            }
            ArrivalPattern::Burst { at } => problems
                .iter()
                .map(|p| RequestArrival { at, problem: *p })
                .collect(),
            ArrivalPattern::Uniform { interval } => {
                assert!(interval >= 0.0, "uniform interval must be non-negative");
                problems
                    .iter()
                    .enumerate()
                    .map(|(i, p)| RequestArrival {
                        at: i as f64 * interval,
                        problem: *p,
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn interactive_spaces_requests_effectively_infinitely() {
        let ps = Dataset::Aime2024.problems(3, 1);
        let arrivals = ArrivalPattern::Interactive.schedule(&ps, 0);
        assert_eq!(arrivals.len(), 3);
        assert_eq!(arrivals[0].at, 0.0);
        assert!(arrivals[1].at > 1e8);
    }

    #[test]
    fn poisson_is_monotone_and_deterministic() {
        let ps = Dataset::Amc2023.problems(20, 5);
        let a = ArrivalPattern::Poisson { rate: 0.5 }.schedule(&ps, 9);
        let b = ArrivalPattern::Poisson { rate: 0.5 }.schedule(&ps, 9);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn poisson_rate_controls_density() {
        let ps = Dataset::Amc2023.problems(200, 5);
        let slow = ArrivalPattern::Poisson { rate: 0.1 }.schedule(&ps, 9);
        let fast = ArrivalPattern::Poisson { rate: 10.0 }.schedule(&ps, 9);
        assert!(slow.last().unwrap().at > fast.last().unwrap().at * 10.0);
    }

    #[test]
    fn burst_arrives_simultaneously() {
        let ps = Dataset::Math500.problems(4, 2);
        let arrivals = ArrivalPattern::Burst { at: 3.5 }.schedule(&ps, 0);
        assert!(arrivals.iter().all(|a| a.at == 3.5));
    }

    #[test]
    #[should_panic(expected = "poisson rate")]
    fn zero_rate_panics() {
        let ps = Dataset::Math500.problems(1, 2);
        ArrivalPattern::Poisson { rate: 0.0 }.schedule(&ps, 0);
    }

    #[test]
    fn uniform_spaces_arrivals_evenly() {
        let ps = Dataset::Amc2023.problems(4, 3);
        let arrivals = ArrivalPattern::Uniform { interval: 2.5 }.schedule(&ps, 0);
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.at, i as f64 * 2.5);
        }
        // Zero interval degenerates to a burst at t=0.
        let burst = ArrivalPattern::Uniform { interval: 0.0 }.schedule(&ps, 0);
        assert!(burst.iter().all(|a| a.at == 0.0));
    }

    #[test]
    #[should_panic(expected = "uniform interval")]
    fn negative_interval_panics() {
        let ps = Dataset::Math500.problems(1, 2);
        ArrivalPattern::Uniform { interval: -1.0 }.schedule(&ps, 0);
    }
}
