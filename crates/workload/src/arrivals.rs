//! Request arrival patterns.
//!
//! The paper's headline experiments use batch size 1 ("interactive edge
//! scenarios", Sec. 6.1), but the two-phase preemptible scheduler
//! (Sec. 4.1.2) is defined by how it reacts to *new requests arriving
//! mid-speculation*. These generators produce arrival timelines to
//! exercise that path.

use ftts_metrics::SloClass;
use ftts_model::{stream, ProblemSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One request arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestArrival {
    /// Arrival time in seconds since experiment start.
    pub at: f64,
    /// The problem the request asks to solve.
    pub problem: ProblemSpec,
    /// Service-level-objective class ([`SloClass::Standard`] unless
    /// assigned via [`RequestArrival::with_slo`]).
    pub slo: SloClass,
    /// Absolute completion deadline in seconds since experiment start
    /// (`f64::INFINITY` when the request has none).
    pub deadline: f64,
    /// Tenant the request bills to (0 — the default tenant — unless
    /// assigned via [`RequestArrival::with_tenant`]). Only meaningful
    /// when the scheduler runs a tenant fair-share policy; untenanted
    /// streams leave every arrival at 0.
    pub tenant: u32,
}

impl RequestArrival {
    /// Assign an SLO class and a deadline `slack` seconds after arrival.
    /// Pass `f64::INFINITY` for a class with no deadline.
    pub fn with_slo(mut self, slo: SloClass, slack: f64) -> Self {
        assert!(slack >= 0.0, "deadline slack must be non-negative");
        self.slo = slo;
        self.deadline = self.at + slack;
        self
    }

    /// Bill the request to `tenant` (see `TenantPolicy` in `ftts-core`).
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }
}

/// How requests arrive at the serving system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// A single request at t=0 (the paper's interactive setting).
    Interactive,
    /// Poisson arrivals with the given mean rate (requests/second).
    Poisson {
        /// Mean arrival rate, requests per second.
        rate: f64,
    },
    /// All requests arrive at once at the given time.
    Burst {
        /// Burst instant in seconds.
        at: f64,
    },
    /// Evenly spaced arrivals: request `i` arrives at `i * interval`.
    /// With `interval` below the per-request service time this offers
    /// sustained load above capacity — the overload regime where
    /// request-level batching and admission control decide goodput.
    Uniform {
        /// Seconds between consecutive arrivals (may be zero).
        interval: f64,
    },
}

/// A deadline-free arrival in the default SLO class.
fn arrival(at: f64, problem: ProblemSpec) -> RequestArrival {
    RequestArrival {
        at,
        problem,
        slo: SloClass::default(),
        deadline: f64::INFINITY,
        tenant: 0,
    }
}

impl ArrivalPattern {
    /// Produce an arrival timeline for `problems`, deterministically from
    /// `seed`. Arrival times are non-decreasing. Every arrival is in the
    /// default SLO class with no deadline; use
    /// [`RequestArrival::with_slo`] to assign classes afterwards.
    pub fn schedule(self, problems: &[ProblemSpec], seed: u64) -> Vec<RequestArrival> {
        match self {
            ArrivalPattern::Interactive => problems
                .iter()
                .enumerate()
                .map(|(i, p)| arrival(i as f64 * 1e9, *p))
                .collect(),
            ArrivalPattern::Poisson { rate } => {
                assert!(rate > 0.0, "poisson rate must be positive");
                let mut rng = stream(&[seed, 0xA881_7A15]);
                let mut t = 0.0;
                problems
                    .iter()
                    .map(|p| {
                        let u: f64 = rng.gen::<f64>().max(1e-12);
                        t += -u.ln() / rate;
                        arrival(t, *p)
                    })
                    .collect()
            }
            ArrivalPattern::Burst { at } => problems.iter().map(|p| arrival(at, *p)).collect(),
            ArrivalPattern::Uniform { interval } => {
                assert!(interval >= 0.0, "uniform interval must be non-negative");
                problems
                    .iter()
                    .enumerate()
                    .map(|(i, p)| arrival(i as f64 * interval, *p))
                    .collect()
            }
        }
    }
}

/// Sample `count` problems from `ranked` with Zipf popularity: rank `r`
/// (1-based, in slice order) is drawn with weight `1 / r^skew`,
/// deterministically from `seed`. This is the request-stream shape
/// prompt caches live on — a small hot head re-requested over and over
/// and a long cold tail — so it is the workload for KV-tier benchmarks.
/// `skew = 0` degenerates to uniform sampling; higher skews concentrate
/// the stream on the first few problems.
pub fn zipf_problems(
    ranked: &[ProblemSpec],
    count: usize,
    skew: f64,
    seed: u64,
) -> Vec<ProblemSpec> {
    assert!(!ranked.is_empty(), "need at least one problem to sample");
    assert!(skew >= 0.0, "zipf skew must be non-negative");
    let weights: Vec<f64> = (1..=ranked.len()).map(|r| (r as f64).powf(-skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = stream(&[seed, 0x21BF_5EED]);
    (0..count)
        .map(|_| {
            let mut u: f64 = rng.gen::<f64>() * total;
            let mut pick = ranked.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    pick = i;
                    break;
                }
                u -= w;
            }
            ranked[pick]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn zipf_sampling_is_deterministic_and_skews_to_the_head() {
        let ps = Dataset::Aime2024.problems(8, 3);
        let a = zipf_problems(&ps, 200, 1.2, 9);
        let b = zipf_problems(&ps, 200, 1.2, 9);
        assert_eq!(a, b, "same seed, same stream");
        let head = a.iter().filter(|p| p.seed == ps[0].seed).count();
        let tail = a.iter().filter(|p| p.seed == ps[7].seed).count();
        assert!(
            head > tail,
            "rank 1 ({head}) must outdraw rank 8 ({tail}) under skew"
        );
        assert!(head > 50, "the Zipf head dominates the stream");
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let ps = Dataset::Amc2023.problems(4, 3);
        let draws = zipf_problems(&ps, 400, 0.0, 11);
        for p in &ps {
            let n = draws.iter().filter(|d| d.seed == p.seed).count();
            assert!((50..=150).contains(&n), "uniform draw count {n} off");
        }
    }

    #[test]
    fn interactive_spaces_requests_effectively_infinitely() {
        let ps = Dataset::Aime2024.problems(3, 1);
        let arrivals = ArrivalPattern::Interactive.schedule(&ps, 0);
        assert_eq!(arrivals.len(), 3);
        assert_eq!(arrivals[0].at, 0.0);
        assert!(arrivals[1].at > 1e8);
    }

    #[test]
    fn poisson_is_monotone_and_deterministic() {
        let ps = Dataset::Amc2023.problems(20, 5);
        let a = ArrivalPattern::Poisson { rate: 0.5 }.schedule(&ps, 9);
        let b = ArrivalPattern::Poisson { rate: 0.5 }.schedule(&ps, 9);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn poisson_rate_controls_density() {
        let ps = Dataset::Amc2023.problems(200, 5);
        let slow = ArrivalPattern::Poisson { rate: 0.1 }.schedule(&ps, 9);
        let fast = ArrivalPattern::Poisson { rate: 10.0 }.schedule(&ps, 9);
        assert!(slow.last().unwrap().at > fast.last().unwrap().at * 10.0);
    }

    #[test]
    fn burst_arrives_simultaneously() {
        let ps = Dataset::Math500.problems(4, 2);
        let arrivals = ArrivalPattern::Burst { at: 3.5 }.schedule(&ps, 0);
        assert!(arrivals.iter().all(|a| a.at == 3.5));
    }

    #[test]
    #[should_panic(expected = "poisson rate")]
    fn zero_rate_panics() {
        let ps = Dataset::Math500.problems(1, 2);
        ArrivalPattern::Poisson { rate: 0.0 }.schedule(&ps, 0);
    }

    #[test]
    fn uniform_spaces_arrivals_evenly() {
        let ps = Dataset::Amc2023.problems(4, 3);
        let arrivals = ArrivalPattern::Uniform { interval: 2.5 }.schedule(&ps, 0);
        for (i, a) in arrivals.iter().enumerate() {
            assert_eq!(a.at, i as f64 * 2.5);
        }
        // Zero interval degenerates to a burst at t=0.
        let burst = ArrivalPattern::Uniform { interval: 0.0 }.schedule(&ps, 0);
        assert!(burst.iter().all(|a| a.at == 0.0));
    }

    #[test]
    #[should_panic(expected = "uniform interval")]
    fn negative_interval_panics() {
        let ps = Dataset::Math500.problems(1, 2);
        ArrivalPattern::Uniform { interval: -1.0 }.schedule(&ps, 0);
    }

    #[test]
    fn arrivals_default_to_no_deadline() {
        let ps = Dataset::Math500.problems(2, 2);
        let arrivals = ArrivalPattern::Burst { at: 1.0 }.schedule(&ps, 0);
        assert!(arrivals.iter().all(|a| a.deadline == f64::INFINITY));
        assert!(arrivals.iter().all(|a| a.slo == SloClass::Standard));
    }

    #[test]
    fn with_slo_sets_absolute_deadline() {
        let ps = Dataset::Math500.problems(1, 2);
        let a = ArrivalPattern::Burst { at: 3.0 }.schedule(&ps, 0)[0]
            .clone()
            .with_slo(SloClass::Interactive, 10.0);
        assert_eq!(a.slo, SloClass::Interactive);
        assert_eq!(a.deadline, 13.0);
        let b = a.with_slo(SloClass::Batch, f64::INFINITY);
        assert_eq!(b.deadline, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "slack")]
    fn negative_slack_panics() {
        let ps = Dataset::Math500.problems(1, 2);
        let _ = ArrivalPattern::Burst { at: 3.0 }.schedule(&ps, 0)[0]
            .clone()
            .with_slo(SloClass::Interactive, -1.0);
    }
}
