//! Synthetic benchmark workloads for the FastTTS evaluation.
//!
//! The paper evaluates on AIME-2024 and AMC-2023 (Sec. 6.1), MATH-500 for
//! the motivation study (Fig. 3), and HumanEval for generality (Fig. 15).
//! Real problem texts are irrelevant to the serving-system behaviour; what
//! matters is each dataset's **difficulty distribution** (drives accuracy
//! bands), **answer-space shape** (drives majority voting), **prompt
//! length**, and **step-length profile** (drives workload irregularity).
//! [`Dataset`] captures those four properties per benchmark and generates
//! deterministic [`ProblemSpec`](ftts_model::ProblemSpec)s from them.
//!
//! [`ArrivalPattern`] generates request arrival timelines for the
//! multi-request/preemption experiments (two-phase scheduling, Sec. 4.1.2).
//!
//! # Example
//!
//! ```
//! use ftts_workload::Dataset;
//!
//! let problems = Dataset::Aime2024.problems(8, 42);
//! assert_eq!(problems.len(), 8);
//! // AIME problems are harder than AMC ones on average.
//! let aime_mean: f64 = problems.iter().map(|p| p.difficulty).sum::<f64>() / 8.0;
//! let amc: Vec<_> = Dataset::Amc2023.problems(8, 42);
//! let amc_mean: f64 = amc.iter().map(|p| p.difficulty).sum::<f64>() / 8.0;
//! assert!(aime_mean > amc_mean);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod dataset;

pub use arrivals::{zipf_problems, ArrivalPattern, RequestArrival};
pub use dataset::Dataset;
