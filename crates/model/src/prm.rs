//! The synthetic discriminative process reward model (PRM).

use serde::{Deserialize, Serialize};

use crate::dist::standard_normal;
use crate::rng::stream;

/// Behavioural parameters of a discriminative PRM.
///
/// `noise_sigma` controls how faithfully scores track latent quality: the
/// 7B Math-Shepherd verifier is sharper than the 1.5B Skywork verifier,
/// which is how verifier capacity shows up in search accuracy (Fig. 14).
/// `autocorrelation` is the AR(1) coefficient tying consecutive steps'
/// score noise together — the correlation the paper cites (Sec. 4.1.1,
/// "verifier scores between consecutive steps are often correlated") and
/// which SelectSPEC uses as a zero-overhead retention proxy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrmProfile {
    /// Display name (matches the `ftts-hw` spec name).
    pub name: String,
    /// Stationary standard deviation of score noise, in logits.
    pub noise_sigma: f64,
    /// AR(1) coefficient of score noise across consecutive steps.
    pub autocorrelation: f64,
}

impl PrmProfile {
    /// Math-Shepherd-Mistral-7B-PRM: sharp scores.
    pub fn math_shepherd_7b() -> Self {
        Self {
            name: "Math-Shepherd-Mistral-7B-PRM".to_string(),
            noise_sigma: 0.85,
            autocorrelation: 0.95,
        }
    }

    /// Skywork-o1-Open-PRM-Qwen-2.5-1.5B: noisier scores.
    pub fn skywork_1_5b() -> Self {
        Self {
            name: "Skywork-o1-Open-PRM-Qwen-2.5-1.5B".to_string(),
            noise_sigma: 1.15,
            autocorrelation: 0.95,
        }
    }
}

/// Deterministic synthetic PRM.
///
/// A discriminative PRM scores a partial solution in one prefill pass
/// (paper Sec. 2.2); here the score is `sigmoid(quality + eps)` with
/// `eps` an AR(1) noise process keyed by the node's stable path key, so
/// the score a node receives does not depend on when it is verified —
/// exactly what LookAhead Verification needs to stay algorithmically
/// equivalent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticPrm {
    profile: std::sync::Arc<PrmProfile>,
}

impl SyntheticPrm {
    /// Create a verifier with the given profile (owned or shared — the
    /// engine passes a shared `Arc` per request).
    pub fn new(profile: impl Into<std::sync::Arc<PrmProfile>>) -> Self {
        Self {
            profile: profile.into(),
        }
    }

    /// The behaviour profile.
    pub fn profile(&self) -> &PrmProfile {
        self.profile.as_ref()
    }

    /// Initial noise state for a fresh reasoning path (the prompt).
    pub fn root_eps(&self, problem_seed: u64) -> f64 {
        let mut rng = stream(&[problem_seed, 0x5EED_0E55]);
        self.profile.noise_sigma * standard_normal(&mut rng)
    }

    /// Evolve the AR(1) noise for the child step keyed `child_key`.
    pub fn child_eps(&self, parent_eps: f64, child_key: u64) -> f64 {
        let rho = self.profile.autocorrelation;
        let innovation_sigma = self.profile.noise_sigma * (1.0 - rho * rho).sqrt();
        let mut rng = stream(&[child_key, 0xEB5_11FE]);
        rho * parent_eps + innovation_sigma * standard_normal(&mut rng)
    }

    /// Score a step given its latent quality and noise state; in (0, 1).
    pub fn score(&self, quality: f64, eps: f64) -> f64 {
        1.0 / (1.0 + (-(quality + eps)).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::key_child;

    #[test]
    fn score_is_monotone_in_quality() {
        let prm = SyntheticPrm::new(PrmProfile::math_shepherd_7b());
        assert!(prm.score(1.0, 0.0) > prm.score(0.0, 0.0));
        assert!(prm.score(0.0, 0.0) > prm.score(-1.0, 0.0));
        let s = prm.score(0.3, 0.1);
        assert!((0.0..1.0).contains(&s));
    }

    #[test]
    fn child_eps_is_deterministic() {
        let prm = SyntheticPrm::new(PrmProfile::skywork_1_5b());
        let a = prm.child_eps(0.4, 123);
        let b = prm.child_eps(0.4, 123);
        assert_eq!(a, b);
        assert_ne!(a, prm.child_eps(0.4, 124));
    }

    #[test]
    fn noise_is_stationary_under_ar1() {
        let prm = SyntheticPrm::new(PrmProfile::skywork_1_5b());
        let mut eps = prm.root_eps(7);
        let mut sum_sq = 0.0;
        let n = 20_000;
        let mut key = 1u64;
        for _ in 0..n {
            key = key_child(key, 0);
            eps = prm.child_eps(eps, key);
            sum_sq += eps * eps;
        }
        let sd = (sum_sq / n as f64).sqrt();
        let target = prm.profile().noise_sigma;
        assert!(
            (sd / target - 1.0).abs() < 0.1,
            "stationary sd {sd} should approach {target}"
        );
    }

    #[test]
    fn consecutive_scores_are_correlated() {
        // The basis of SelectSPEC: parent score predicts child score.
        let prm = SyntheticPrm::new(PrmProfile::math_shepherd_7b());
        let n = 5_000;
        let mut parent_eps: Vec<f64> = Vec::with_capacity(n);
        let mut child_eps: Vec<f64> = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let p = prm.root_eps(i);
            let c = prm.child_eps(p, key_child(i, 0));
            parent_eps.push(p);
            child_eps.push(c);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mp = mean(&parent_eps);
        let mc = mean(&child_eps);
        let mut cov = 0.0;
        let mut vp = 0.0;
        let mut vc = 0.0;
        for i in 0..n {
            cov += (parent_eps[i] - mp) * (child_eps[i] - mc);
            vp += (parent_eps[i] - mp).powi(2);
            vc += (child_eps[i] - mc).powi(2);
        }
        let corr = cov / (vp.sqrt() * vc.sqrt());
        let rho = prm.profile().autocorrelation;
        assert!(
            (corr - rho).abs() < 0.06,
            "empirical corr {corr} vs rho {rho}"
        );
    }

    #[test]
    fn sharper_verifier_ranks_quality_better() {
        // With lower noise, score ordering should agree with quality
        // ordering more often — the 7B-vs-1.5B verifier gap.
        let sharp = SyntheticPrm::new(PrmProfile::math_shepherd_7b());
        let noisy = SyntheticPrm::new(PrmProfile::skywork_1_5b());
        let agreement = |prm: &SyntheticPrm| -> f64 {
            let mut agree = 0;
            let n = 4_000;
            for i in 0..n as u64 {
                let qa = 0.5;
                let qb = -0.5;
                let ea = prm.child_eps(0.0, key_child(i, 0));
                let eb = prm.child_eps(0.0, key_child(i, 1));
                if prm.score(qa, ea) > prm.score(qb, eb) {
                    agree += 1;
                }
            }
            agree as f64 / n as f64
        };
        assert!(agreement(&sharp) > agreement(&noisy));
    }
}
