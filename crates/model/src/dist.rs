//! Minimal distribution sampling.
//!
//! Implemented by hand (Box–Muller) rather than pulling in `rand_distr`,
//! keeping the dependency set to the approved offline list.

use rand::Rng;

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample `N(mu, sigma)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// Sample a log-normal with the given *median* and log-space `sigma`,
/// clipped to `[min, max]` and rounded to a token count.
///
/// The log-normal's heavy upper tail is what produces the paper's extreme
/// average-vs-maximum step-length disparity (Fig. 3, right).
pub fn lognormal_clipped<R: Rng + ?Sized>(
    rng: &mut R,
    median: f64,
    sigma: f64,
    min: u64,
    max: u64,
) -> u64 {
    assert!(
        median > 0.0 && sigma >= 0.0,
        "invalid log-normal parameters"
    );
    assert!(min <= max, "empty clip range");
    let x = (median.ln() + sigma * standard_normal(rng)).exp();
    (x.round() as u64).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(12345)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_respects_clip() {
        let mut r = rng();
        for _ in 0..5_000 {
            let v = lognormal_clipped(&mut r, 150.0, 1.0, 8, 1200);
            assert!((8..=1200).contains(&v));
        }
    }

    #[test]
    fn lognormal_has_heavy_tail() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<u64> = (0..n)
            .map(|_| lognormal_clipped(&mut r, 150.0, 1.0, 8, 4096))
            .collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let max = *samples.iter().max().unwrap() as f64;
        // Paper Fig. 3 (right): max step length is several times the mean.
        assert!(
            max / mean > 4.0,
            "tail not heavy enough: mean {mean}, max {max}"
        );
        // Median should be near the nominal median.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[n / 2] as f64;
        assert!((median / 150.0 - 1.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(lognormal_clipped(&mut r, 64.0, 0.0, 1, 1000), 64);
        }
    }

    #[test]
    #[should_panic(expected = "empty clip range")]
    fn inverted_clip_panics() {
        let mut r = rng();
        lognormal_clipped(&mut r, 64.0, 1.0, 10, 5);
    }
}
