//! Synthetic model behaviour for the FastTTS simulation.
//!
//! The systems phenomena FastTTS optimizes — straggler steps, prefix
//! sharing, memory pressure — do not depend on what the tokens *say*;
//! they depend on how many tokens each thinking step produces, how the
//! reasoning tree branches, and how verifier scores steer the search.
//! This crate therefore replaces transformer inference with a calibrated,
//! fully deterministic stochastic process:
//!
//! * [`SyntheticGenerator`] draws each thinking step's **token count**
//!   from a heavy-tailed log-normal (matching the avg-vs-max disparity of
//!   paper Fig. 3 right), evolves a **latent quality** random walk per
//!   path, decides **termination**, and emits a final **answer** whose
//!   correctness probability is a logistic function of quality.
//! * [`SyntheticPrm`] scores a step as `sigmoid(quality + noise)` where
//!   the noise follows an AR(1) process across consecutive steps — the
//!   score correlation the paper's Speculative Candidate Selection
//!   exploits (Sec. 4.1.1) — with noise magnitude set by verifier
//!   capacity.
//!
//! Everything is keyed by stable path keys ([`key_child`]), so a step's
//! outcome is identical regardless of *when* or *in which batch* the
//! engine simulates it. This is what makes FastTTS's algorithmic
//! equivalence exactly testable.
//!
//! # Example
//!
//! ```
//! use ftts_model::{GeneratorProfile, ProblemSpec, StepProfile, SyntheticGenerator};
//!
//! let gen = SyntheticGenerator::new(GeneratorProfile::qwen25_math_1_5b());
//! let problem = ProblemSpec {
//!     seed: 7,
//!     difficulty: 1.2,
//!     prompt_tokens: 120,
//!     answer_space: 64,
//!     decoy_concentration: 1.2,
//!     steps: StepProfile::aime(),
//! };
//! let root = gen.root_latent(&problem);
//! let step = gen.plan_step(&problem, &root, 1);
//! assert!(step.n_tokens >= problem.steps.min_tokens);
//! assert!(step.n_tokens <= problem.steps.max_tokens);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod generator;
mod prm;
mod rng;

pub use dist::{lognormal_clipped, normal, standard_normal};
pub use generator::{
    GeneratorProfile, NodeLatent, ProblemSpec, StepPlan, StepProfile, SyntheticGenerator,
};
pub use prm::{PrmProfile, SyntheticPrm};
pub use rng::{key_child, mix64, stream};
