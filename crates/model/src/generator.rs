//! The synthetic reasoning generator.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::{lognormal_clipped, normal};
use crate::rng::stream;

/// Distribution of thinking-step token counts for a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepProfile {
    /// Median tokens per thinking step.
    pub median_tokens: f64,
    /// Log-space sigma (tail heaviness).
    pub sigma: f64,
    /// Minimum tokens per step.
    pub min_tokens: u64,
    /// Hard cap per step (the serving system's max-new-tokens between
    /// verifications).
    pub max_tokens: u64,
    /// Mean number of reasoning steps before termination.
    pub mean_depth: f64,
    /// Spread of the termination depth (logistic hazard scale).
    pub depth_spread: f64,
    /// Hard cap on steps.
    pub max_depth: u32,
}

impl StepProfile {
    /// Competition-math profile (AIME-like): long, very irregular steps.
    pub fn aime() -> Self {
        Self {
            median_tokens: 140.0,
            sigma: 1.0,
            min_tokens: 8,
            max_tokens: 1200,
            mean_depth: 8.0,
            depth_spread: 1.6,
            max_depth: 12,
        }
    }

    /// Broader-difficulty math profile (AMC-like): shorter steps.
    pub fn amc() -> Self {
        Self {
            median_tokens: 90.0,
            sigma: 0.9,
            min_tokens: 8,
            max_tokens: 1024,
            mean_depth: 6.0,
            depth_spread: 1.4,
            max_depth: 10,
        }
    }

    /// MATH-500 profile.
    pub fn math500() -> Self {
        Self {
            median_tokens: 110.0,
            sigma: 0.95,
            min_tokens: 8,
            max_tokens: 1024,
            mean_depth: 7.0,
            depth_spread: 1.5,
            max_depth: 11,
        }
    }

    /// Code-generation profile (HumanEval-like): moderately long steps,
    /// shallower trees.
    pub fn humaneval() -> Self {
        Self {
            median_tokens: 160.0,
            sigma: 0.8,
            min_tokens: 16,
            max_tokens: 1024,
            mean_depth: 5.0,
            depth_spread: 1.2,
            max_depth: 8,
        }
    }

    /// Override the per-step token cap (used by the Varying Granularity
    /// search variant, Fig. 11).
    pub fn with_max_tokens(mut self, max_tokens: u64) -> Self {
        self.max_tokens = max_tokens;
        self.min_tokens = self.min_tokens.min(max_tokens);
        self
    }
}

/// Static behavioural parameters of a generator model.
///
/// `capability` is a quality-logit offset: larger models start reasoning
/// paths at higher latent quality, which is how the 7B generator earns
/// its accuracy advantage in Fig. 14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorProfile {
    /// Display name (matches the `ftts-hw` spec name).
    pub name: String,
    /// Quality-logit capability offset.
    pub capability: f64,
    /// Initial quality spread across paths.
    pub init_sigma: f64,
    /// Per-step quality drift.
    pub step_drift: f64,
    /// Per-step quality noise.
    pub step_sigma: f64,
    /// Logistic slope mapping final quality to answer correctness.
    pub answer_slope: f64,
    /// Logistic intercept for answer correctness.
    pub answer_bias: f64,
}

impl GeneratorProfile {
    /// Behaviour profile for Qwen2.5-Math-1.5B.
    ///
    /// Calibrated so that the full pipeline lands in the paper's
    /// reported accuracy bands (Fig. 3 / Fig. 14); see EXPERIMENTS.md.
    /// The slightly negative drift models reasoning drift-off-course:
    /// without verifier pruning, long chains degrade.
    pub fn qwen25_math_1_5b() -> Self {
        Self {
            name: "Qwen2.5-Math-1.5B-Instruct".to_string(),
            capability: 0.55,
            init_sigma: 0.40,
            step_drift: -0.02,
            step_sigma: 0.30,
            answer_slope: 1.6,
            answer_bias: 0.0,
        }
    }

    /// Behaviour profile for Qwen2.5-Math-7B.
    pub fn qwen25_math_7b() -> Self {
        Self {
            name: "Qwen2.5-Math-7B-Instruct".to_string(),
            capability: 1.25,
            ..Self::qwen25_math_1_5b()
        }
    }
}

/// One problem instance as the generator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Root seed; all path keys derive from it.
    pub seed: u64,
    /// Difficulty in quality-logit units (higher is harder).
    pub difficulty: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Size of the answer space (e.g. AIME answers are integers 0–999).
    pub answer_space: u32,
    /// Zipf-like concentration of wrong answers onto common distractors;
    /// higher values make majority voting harder to fool.
    pub decoy_concentration: f64,
    /// Step-length and depth profile.
    pub steps: StepProfile,
}

impl ProblemSpec {
    /// The canonical correct answer (index 0 by convention; answers are
    /// compared symbolically so the value itself is arbitrary).
    pub fn correct_answer(&self) -> u32 {
        0
    }
}

/// Latent state of one reasoning path node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeLatent {
    /// Stable path key (drives all downstream randomness).
    pub key: u64,
    /// Key of the depth-1 ancestor: the "solution approach" this path
    /// committed to. Wrong answers cluster *within* an approach, which is
    /// why diversity-preserving search (DVTS) pays off — a herded beam
    /// family votes for the same wrong answer.
    pub approach: u64,
    /// Latent correctness potential, in logits.
    pub quality: f64,
    /// Reasoning depth (0 = prompt).
    pub depth: u32,
    /// Whether this node ends its reasoning path.
    pub terminal: bool,
    /// Final answer if terminal.
    pub answer: Option<u32>,
}

/// The generator's plan for one thinking step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepPlan {
    /// Tokens this step will emit.
    pub n_tokens: u64,
    /// Latent state of the resulting child node.
    pub latent: NodeLatent,
}

/// Deterministic synthetic generator model.
///
/// All methods are pure functions of `(profile, problem, parent latent,
/// branch)` — see the crate docs for why this matters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticGenerator {
    profile: std::sync::Arc<GeneratorProfile>,
}

impl SyntheticGenerator {
    /// Create a generator with the given behaviour profile (owned or
    /// shared — per-request construction from a shared profile is free).
    pub fn new(profile: impl Into<std::sync::Arc<GeneratorProfile>>) -> Self {
        Self {
            profile: profile.into(),
        }
    }

    /// The behaviour profile.
    pub fn profile(&self) -> &GeneratorProfile {
        self.profile.as_ref()
    }

    /// Latent state of the prompt (root of the reasoning tree).
    pub fn root_latent(&self, problem: &ProblemSpec) -> NodeLatent {
        let key = crate::rng::mix64(problem.seed, 0x726F_6F74);
        let mut rng = stream(&[key, 0xA11C_E5ED]);
        let quality = normal(
            &mut rng,
            self.profile.capability - problem.difficulty,
            self.profile.init_sigma,
        );
        NodeLatent {
            key,
            approach: key,
            quality,
            depth: 0,
            terminal: false,
            answer: None,
        }
    }

    /// Plan the thinking step produced by branching `branch` from
    /// `parent`. Deterministic in `(problem, parent.key, branch)`.
    pub fn plan_step(&self, problem: &ProblemSpec, parent: &NodeLatent, branch: u64) -> StepPlan {
        assert!(!parent.terminal, "cannot extend a terminal path");
        let key = crate::rng::key_child(parent.key, branch);
        let mut rng = stream(&[key, 0x57E9_90A1]);
        let depth = parent.depth + 1;
        // A path commits to its approach on the first step.
        let approach = if parent.depth == 0 {
            key
        } else {
            parent.approach
        };
        let quality =
            parent.quality + normal(&mut rng, self.profile.step_drift, self.profile.step_sigma);
        let n_tokens = lognormal_clipped(
            &mut rng,
            problem.steps.median_tokens,
            problem.steps.sigma,
            problem.steps.min_tokens,
            problem.steps.max_tokens,
        );
        let terminal = self.is_terminal(problem, depth, &mut rng);
        let answer = if terminal {
            Some(self.draw_answer(problem, quality, key, approach))
        } else {
            None
        };
        StepPlan {
            n_tokens,
            latent: NodeLatent {
                key,
                approach,
                quality,
                depth,
                terminal,
                answer,
            },
        }
    }

    fn is_terminal<R: rand::Rng>(&self, problem: &ProblemSpec, depth: u32, rng: &mut R) -> bool {
        if depth >= problem.steps.max_depth {
            return true;
        }
        // Logistic hazard centred at mean_depth.
        let z = (depth as f64 - problem.steps.mean_depth) / problem.steps.depth_spread;
        let hazard = 1.0 / (1.0 + (-z).exp());
        rng.gen::<f64>() < hazard
    }

    /// Draw the final answer for a terminal node: correct with
    /// probability `sigmoid(slope * quality + bias)`. Wrong answers are
    /// Zipf-popular decoys, and with probability
    /// [`APPROACH_DECOY_PROB`](Self::APPROACH_DECOY_PROB) the decoy is
    /// the *approach's* characteristic wrong answer — so a whole beam
    /// family that herded onto one flawed approach votes for the same
    /// wrong value.
    fn draw_answer(&self, problem: &ProblemSpec, quality: f64, key: u64, approach: u64) -> u32 {
        let mut rng = stream(&[key, 0xAB5_3E11]);
        let logit = self.profile.answer_slope * quality + self.profile.answer_bias;
        let p_correct = 1.0 / (1.0 + (-logit).exp());
        if rng.gen::<f64>() < p_correct {
            return problem.correct_answer();
        }
        if rng.gen::<f64>() < Self::APPROACH_DECOY_PROB {
            let mut arng = stream(&[approach, problem.seed, 0xDE_C0]);
            Self::zipf_decoy(problem, &mut arng)
        } else {
            Self::zipf_decoy(problem, &mut rng)
        }
    }

    /// Probability that a wrong answer is the approach's shared decoy
    /// rather than an idiosyncratic one.
    pub const APPROACH_DECOY_PROB: f64 = 0.8;

    /// Zipf over decoys `1..answer_space`.
    fn zipf_decoy<R: rand::Rng>(problem: &ProblemSpec, rng: &mut R) -> u32 {
        let n = (problem.answer_space.max(2) - 1) as usize;
        let s = problem.decoy_concentration;
        let total: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut u = rng.gen::<f64>() * total;
        for k in 1..=n {
            u -= (k as f64).powf(-s);
            if u <= 0.0 {
                return k as u32;
            }
        }
        n as u32
    }

    /// Probability that a terminal node with this quality answers
    /// correctly (exposed for calibration tooling).
    pub fn p_correct(&self, quality: f64) -> f64 {
        let logit = self.profile.answer_slope * quality + self.profile.answer_bias;
        1.0 / (1.0 + (-logit).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> ProblemSpec {
        ProblemSpec {
            seed: 99,
            difficulty: 1.0,
            prompt_tokens: 128,
            answer_space: 64,
            decoy_concentration: 1.2,
            steps: StepProfile::aime(),
        }
    }

    fn generator() -> SyntheticGenerator {
        SyntheticGenerator::new(GeneratorProfile::qwen25_math_1_5b())
    }

    #[test]
    fn plan_step_is_deterministic() {
        let g = generator();
        let p = problem();
        let root = g.root_latent(&p);
        let a = g.plan_step(&p, &root, 3);
        let b = g.plan_step(&p, &root, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn branches_differ() {
        let g = generator();
        let p = problem();
        let root = g.root_latent(&p);
        let a = g.plan_step(&p, &root, 0);
        let b = g.plan_step(&p, &root, 1);
        assert_ne!(a.latent.key, b.latent.key);
        assert_ne!(a.n_tokens, b.n_tokens);
    }

    #[test]
    fn paths_terminate_within_max_depth() {
        let g = generator();
        let p = problem();
        let mut node = g.root_latent(&p);
        let mut steps = 0;
        while !node.terminal {
            node = g.plan_step(&p, &node, 0).latent;
            steps += 1;
            assert!(steps <= p.steps.max_depth, "never terminated");
        }
        assert!(node.answer.is_some());
    }

    #[test]
    fn terminal_paths_cannot_extend() {
        let g = generator();
        let p = problem();
        let mut node = g.root_latent(&p);
        while !node.terminal {
            node = g.plan_step(&p, &node, 0).latent;
        }
        let result = std::panic::catch_unwind(|| g.plan_step(&p, &node, 0));
        assert!(result.is_err());
    }

    #[test]
    fn capability_improves_root_quality_distribution() {
        let small = SyntheticGenerator::new(GeneratorProfile::qwen25_math_1_5b());
        let big = SyntheticGenerator::new(GeneratorProfile::qwen25_math_7b());
        let mut sum_small = 0.0;
        let mut sum_big = 0.0;
        for seed in 0..200 {
            let p = ProblemSpec { seed, ..problem() };
            sum_small += small.root_latent(&p).quality;
            sum_big += big.root_latent(&p).quality;
        }
        assert!(sum_big > sum_small + 50.0, "7B must start clearly higher");
    }

    #[test]
    fn answers_are_correct_more_often_at_high_quality() {
        let g = generator();
        let p = problem();
        let count_correct = |quality: f64| -> usize {
            (0..500u64)
                .filter(|&i| {
                    let latent = NodeLatent {
                        key: i * 7 + 1,
                        approach: i * 7 + 1,
                        quality,
                        depth: 11,
                        terminal: false,
                        answer: None,
                    };
                    // Force a terminal step at max depth.
                    let step = g.plan_step(&p, &latent, 0);
                    step.latent.answer == Some(p.correct_answer())
                })
                .count()
        };
        let low = count_correct(-2.0);
        let high = count_correct(2.0);
        assert!(high > low + 100, "high quality {high} vs low {low}");
    }

    #[test]
    fn decoys_cluster_on_popular_distractors() {
        let g = generator();
        let p = problem();
        let mut counts = vec![0u32; p.answer_space as usize];
        for i in 0..2000u64 {
            let latent = NodeLatent {
                key: i,
                approach: i,
                quality: -6.0,
                depth: 11,
                terminal: false,
                answer: None,
            };
            let step = g.plan_step(&p, &latent, 0);
            if let Some(a) = step.latent.answer {
                counts[a as usize] += 1;
            }
        }
        // Decoy 1 (most popular) should beat decoy 20 clearly.
        assert!(counts[1] > 3 * counts[20].max(1));
    }

    #[test]
    fn p_correct_is_monotone() {
        let g = generator();
        assert!(g.p_correct(1.0) > g.p_correct(0.0));
        assert!(g.p_correct(0.0) > g.p_correct(-1.0));
    }

    #[test]
    fn step_profiles_vary_by_dataset() {
        assert!(StepProfile::aime().median_tokens > StepProfile::amc().median_tokens);
        let vg = StepProfile::aime().with_max_tokens(64);
        assert_eq!(vg.max_tokens, 64);
        assert!(vg.min_tokens <= 64);
    }
}
