//! Deterministic stream derivation.
//!
//! Every stochastic decision in the simulation is drawn from a ChaCha
//! stream derived from a *stable key*, never from shared mutable RNG
//! state. Two consequences:
//!
//! 1. Runs are bit-reproducible across machines and module boundaries.
//! 2. The outcome of a reasoning step depends only on its position in the
//!    search tree — not on batch composition or scheduling order — which
//!    is the property that lets FastTTS claim (and us prove) algorithmic
//!    equivalence with the baseline.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer — a strong 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix two 64-bit values into one, non-commutatively.
pub fn mix64(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a).wrapping_add(b.rotate_left(17)))
}

/// Stable key for the `branch`-th child of a node with key `parent_key`.
///
/// The branch index is the child's position among its siblings at fork
/// time; branch 0 is the "continuation" child whose tokens Speculative
/// Beam Extension pre-generates.
pub fn key_child(parent_key: u64, branch: u64) -> u64 {
    mix64(parent_key, 0x63_6869_6C64_u64.wrapping_add(branch))
}

/// Build a deterministic ChaCha stream from a list of key parts.
pub fn stream(parts: &[u64]) -> ChaCha8Rng {
    let mut acc = 0xF4_57_7F_F5_3F_2D_9C_A1_u64;
    for &p in parts {
        acc = mix64(acc, p);
    }
    let mut seed = [0u8; 32];
    let mut word = acc;
    for chunk in seed.chunks_mut(8) {
        word = splitmix64(word);
        chunk.copy_from_slice(&word.to_le_bytes());
    }
    ChaCha8Rng::from_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn mix64_is_order_sensitive() {
        assert_ne!(mix64(1, 2), mix64(2, 1));
    }

    #[test]
    fn key_child_branches_diverge() {
        let parent = 42;
        let a = key_child(parent, 0);
        let b = key_child(parent, 1);
        assert_ne!(a, b);
        assert_ne!(a, parent);
    }

    #[test]
    fn streams_are_reproducible() {
        let mut r1 = stream(&[1, 2, 3]);
        let mut r2 = stream(&[1, 2, 3]);
        for _ in 0..16 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn streams_differ_between_keys() {
        let mut r1 = stream(&[1, 2, 3]);
        let mut r2 = stream(&[1, 2, 4]);
        assert_ne!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn sibling_keys_do_not_collide_in_practice() {
        let mut keys: Vec<u64> = (0..10_000).map(|b| key_child(777, b)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10_000);
    }
}
