//! Utilization traces, the simulation's stand-in for Nsight Systems.
//!
//! The paper profiles GPU tensor-core utilization at 10 kHz to expose the
//! straggler-induced utilization decay during generation (Fig. 4) and the
//! recovery achieved by Speculative Beam Extension (Fig. 17). The engine
//! records one [`UtilSample`] per simulated kernel; [`UtilizationTrace`]
//! can then resample them onto a fixed-rate grid exactly like a profiler
//! would.

use serde::{Deserialize, Serialize};

use crate::Phase;

/// One recorded kernel interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilSample {
    /// Interval start, seconds since trace origin.
    pub start: f64,
    /// Interval duration in seconds.
    pub duration: f64,
    /// Compute utilization during the interval, in `[0, 1]`.
    pub util: f64,
    /// Phase the kernel belonged to.
    pub phase: Phase,
}

/// An append-only utilization trace.
///
/// # Example
///
/// ```
/// use ftts_hw::{Phase, UtilizationTrace};
/// let mut trace = UtilizationTrace::new();
/// trace.record(0.0, 0.5, 0.6, Phase::Generation);
/// trace.record(0.5, 0.5, 0.1, Phase::Generation);
/// let grid = trace.resample(0.25, Some(Phase::Generation));
/// assert_eq!(grid.len(), 4);
/// assert!(grid[0].1 > grid[3].1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    samples: Vec<UtilSample>,
}

impl UtilizationTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a kernel interval.
    pub fn record(&mut self, start: f64, duration: f64, util: f64, phase: Phase) {
        debug_assert!(duration >= 0.0, "negative kernel duration");
        self.samples.push(UtilSample {
            start,
            duration,
            util: util.clamp(0.0, 1.0),
            phase,
        });
    }

    /// All raw samples in insertion order.
    pub fn samples(&self) -> &[UtilSample] {
        &self.samples
    }

    /// Number of recorded kernels.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total span covered by the trace, in seconds.
    pub fn span(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.start + s.duration)
            .fold(0.0, f64::max)
    }

    /// Time-weighted mean utilization, optionally restricted to a phase.
    pub fn mean_util(&self, phase: Option<Phase>) -> f64 {
        let mut time = 0.0;
        let mut area = 0.0;
        for s in &self.samples {
            if phase.is_none_or(|p| p == s.phase) {
                time += s.duration;
                area += s.duration * s.util;
            }
        }
        if time > 0.0 {
            area / time
        } else {
            0.0
        }
    }

    /// Total busy time attributed to `phase`, in seconds.
    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.duration)
            .sum()
    }

    /// Resample onto a fixed grid of `bin` seconds, like a sampling
    /// profiler. Returns `(bin_start, mean_util)` pairs covering the whole
    /// span; time not covered by matching kernels counts as idle (0).
    pub fn resample(&self, bin: f64, phase: Option<Phase>) -> Vec<(f64, f64)> {
        assert!(bin > 0.0, "bin width must be positive");
        let span = self.span();
        if span == 0.0 {
            return Vec::new();
        }
        let n_bins = (span / bin).ceil() as usize;
        let mut area = vec![0.0f64; n_bins];
        for s in &self.samples {
            if !phase.is_none_or(|p| p == s.phase) {
                continue;
            }
            let end = s.start + s.duration;
            let first = (s.start / bin).floor() as usize;
            let last = ((end / bin).ceil() as usize).min(n_bins);
            for (b, slot) in area.iter_mut().enumerate().take(last).skip(first) {
                let lo = (b as f64 * bin).max(s.start);
                let hi = ((b + 1) as f64 * bin).min(end);
                if hi > lo {
                    *slot += (hi - lo) * s.util;
                }
            }
        }
        area.iter()
            .enumerate()
            .map(|(b, a)| (b as f64 * bin, a / bin))
            .collect()
    }

    /// Merge another trace into this one, shifting it by `offset` seconds.
    pub fn extend_shifted(&mut self, other: &UtilizationTrace, offset: f64) {
        for s in &other.samples {
            self.samples.push(UtilSample {
                start: s.start + offset,
                ..*s
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UtilizationTrace {
        let mut t = UtilizationTrace::new();
        t.record(0.0, 1.0, 0.8, Phase::Generation);
        t.record(1.0, 1.0, 0.4, Phase::Generation);
        t.record(2.0, 2.0, 0.9, Phase::Verification);
        t
    }

    #[test]
    fn span_and_len() {
        let t = toy();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.span(), 4.0);
    }

    #[test]
    fn mean_util_overall_and_per_phase() {
        let t = toy();
        let overall = t.mean_util(None);
        assert!((overall - (0.8 + 0.4 + 2.0 * 0.9) / 4.0).abs() < 1e-12);
        let g = t.mean_util(Some(Phase::Generation));
        assert!((g - 0.6).abs() < 1e-12);
        let v = t.mean_util(Some(Phase::Verification));
        assert!((v - 0.9).abs() < 1e-12);
    }

    #[test]
    fn phase_seconds_partition_span() {
        let t = toy();
        let total = t.phase_seconds(Phase::Generation) + t.phase_seconds(Phase::Verification);
        assert!((total - t.span()).abs() < 1e-12);
    }

    #[test]
    fn resample_covers_span_and_respects_idle() {
        let mut t = UtilizationTrace::new();
        t.record(0.0, 1.0, 1.0, Phase::Generation);
        // 1 s of idle gap.
        t.record(2.0, 1.0, 0.5, Phase::Generation);
        let grid = t.resample(0.5, None);
        assert_eq!(grid.len(), 6);
        assert!((grid[0].1 - 1.0).abs() < 1e-12);
        assert!((grid[2].1 - 0.0).abs() < 1e-12, "gap must read as idle");
        assert!((grid[5].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resample_filters_by_phase() {
        let t = toy();
        let g = t.resample(1.0, Some(Phase::Generation));
        assert!(
            (g[2].1 - 0.0).abs() < 1e-12,
            "verification time reads idle for generation"
        );
    }

    #[test]
    fn extend_shifted_offsets_samples() {
        let mut a = UtilizationTrace::new();
        a.record(0.0, 1.0, 0.5, Phase::Generation);
        let mut b = UtilizationTrace::new();
        b.record(0.0, 1.0, 0.7, Phase::Verification);
        a.extend_shifted(&b, 5.0);
        assert_eq!(a.len(), 2);
        assert!((a.span() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn record_clamps_utilization() {
        let mut t = UtilizationTrace::new();
        t.record(0.0, 1.0, 7.0, Phase::Generation);
        assert_eq!(t.samples()[0].util, 1.0);
    }

    #[test]
    fn empty_trace_behaves() {
        let t = UtilizationTrace::new();
        assert_eq!(t.mean_util(None), 0.0);
        assert!(t.resample(0.1, None).is_empty());
        assert_eq!(t.span(), 0.0);
    }
}
