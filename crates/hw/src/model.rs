//! Transformer architecture specifications.
//!
//! Parameter counts, weight bytes, per-token KV-cache bytes and FLOP
//! counts are all derived from the real architectures of the models the
//! paper serves (Sec. 6.1 / Artifact B.3.5), so the cost model reflects
//! each model's genuine arithmetic intensity. Notably the Qwen2.5 family
//! uses aggressive grouped-query attention (2–4 KV heads), giving the
//! small generator a tiny per-token KV footprint, while the
//! Math-Shepherd-Mistral-7B verifier carries 8 KV heads and a 128 KiB/token
//! cache — the asymmetry behind the paper's Fig. 6 and Sec. 4.3.

use serde::{Deserialize, Serialize};

/// Functional role a model plays in a TTS serving system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Autoregressive generator (policy model) producing thinking steps.
    Generator,
    /// Discriminative process reward model scoring partial solutions in a
    /// single prefill pass (the paper's preferred verifier class).
    DiscriminativePrm,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::Generator => write!(f, "generator"),
            ModelKind::DiscriminativePrm => write!(f, "discriminative-prm"),
        }
    }
}

/// Architecture description of a decoder-only transformer.
///
/// # Example
///
/// ```
/// use ftts_hw::ModelSpec;
/// let m = ModelSpec::qwen25_math_1_5b();
/// // Qwen2.5-Math-1.5B really is ~1.5 billion parameters.
/// assert!((m.param_count() as f64 / 1e9 - 1.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Hugging Face style model identifier.
    pub name: String,
    /// Role of the model in the serving system.
    pub kind: ModelKind,
    /// Number of transformer layers.
    pub n_layers: u32,
    /// Model (residual stream) width.
    pub hidden: u32,
    /// Number of query heads.
    pub n_heads: u32,
    /// Number of key/value heads (GQA).
    pub n_kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// MLP intermediate width (SwiGLU assumed: 3 matrices).
    pub intermediate: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Whether the unembedding is tied to the embedding matrix.
    pub tied_embeddings: bool,
    /// Bytes per weight/activation element (2 = BF16).
    pub dtype_bytes: u32,
    /// Weight quantization in bits (16 = none). Weight-only quantization
    /// shrinks the weight sweep (and frees KV memory) without touching
    /// the KV cache dtype — the orthogonal efficiency lever the paper
    /// notes FastTTS composes with (Sec. 6.4).
    pub weight_bits: u32,
}

impl ModelSpec {
    /// Qwen2.5-Math-1.5B-Instruct — the paper's small edge generator.
    pub fn qwen25_math_1_5b() -> Self {
        Self {
            name: "Qwen2.5-Math-1.5B-Instruct".to_string(),
            kind: ModelKind::Generator,
            n_layers: 28,
            hidden: 1536,
            n_heads: 12,
            n_kv_heads: 2,
            head_dim: 128,
            intermediate: 8960,
            vocab: 151_936,
            tied_embeddings: true,
            dtype_bytes: 2,
            weight_bits: 16,
        }
    }

    /// Qwen2.5-Math-7B-Instruct — generator for the generator-heavy
    /// (7B+1.5B) configuration.
    pub fn qwen25_math_7b() -> Self {
        Self {
            name: "Qwen2.5-Math-7B-Instruct".to_string(),
            kind: ModelKind::Generator,
            n_layers: 28,
            hidden: 3584,
            n_heads: 28,
            n_kv_heads: 4,
            head_dim: 128,
            intermediate: 18_944,
            vocab: 152_064,
            tied_embeddings: false,
            dtype_bytes: 2,
            weight_bits: 16,
        }
    }

    /// Math-Shepherd-Mistral-7B-PRM — verifier for the verifier-heavy
    /// (1.5B+7B) configuration.
    pub fn math_shepherd_7b() -> Self {
        Self {
            name: "Math-Shepherd-Mistral-7B-PRM".to_string(),
            kind: ModelKind::DiscriminativePrm,
            n_layers: 32,
            hidden: 4096,
            n_heads: 32,
            n_kv_heads: 8,
            head_dim: 128,
            intermediate: 14_336,
            vocab: 32_000,
            tied_embeddings: false,
            dtype_bytes: 2,
            weight_bits: 16,
        }
    }

    /// Skywork-o1-Open-PRM-Qwen-2.5-1.5B — verifier for the
    /// memory-constrained (1.5B+1.5B) configuration.
    pub fn skywork_prm_1_5b() -> Self {
        Self {
            name: "Skywork-o1-Open-PRM-Qwen-2.5-1.5B".to_string(),
            kind: ModelKind::DiscriminativePrm,
            ..Self::qwen25_math_1_5b()
        }
    }

    /// Attention parameters per layer (Q, K, V, O projections).
    fn attn_params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let q_dim = (self.n_heads * self.head_dim) as u64;
        let kv_dim = (self.n_kv_heads * self.head_dim) as u64;
        h * q_dim + 2 * h * kv_dim + q_dim * h
    }

    /// MLP parameters per layer (SwiGLU gate/up/down).
    fn mlp_params_per_layer(&self) -> u64 {
        3 * self.hidden as u64 * self.intermediate as u64
    }

    /// Total parameter count derived from the architecture.
    pub fn param_count(&self) -> u64 {
        let per_layer =
            self.attn_params_per_layer() + self.mlp_params_per_layer() + 2 * self.hidden as u64;
        let embed = self.vocab as u64 * self.hidden as u64;
        let embed_total = if self.tied_embeddings {
            embed
        } else {
            2 * embed
        };
        self.n_layers as u64 * per_layer + embed_total + self.hidden as u64
    }

    /// Weight-only quantized variant of this model (e.g. 8 or 4 bits).
    /// KV cache and activations stay at `dtype_bytes`.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is one of 4, 8 or 16.
    pub fn quantized(mut self, bits: u32) -> Self {
        assert!(
            matches!(bits, 4 | 8 | 16),
            "unsupported weight quantization: {bits} bits"
        );
        self.weight_bits = bits;
        if bits < 16 {
            self.name = format!("{}-W{}", self.name, bits);
        }
        self
    }

    /// Bytes of VRAM occupied by the weights (respecting weight-only
    /// quantization).
    pub fn weight_bytes(&self) -> u64 {
        self.param_count() * self.weight_bits as u64 / 8
    }

    /// Bytes of KV cache written per token (all layers, K and V).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.n_layers as u64
            * self.n_kv_heads as u64
            * self.head_dim as u64
            * self.dtype_bytes as u64
    }

    /// Bytes of KV cache for a sequence of `tokens` tokens — the paper's
    /// `KVBytes(1, S)` (Sec. 4.3.1).
    pub fn kv_bytes(&self, tokens: u64) -> u64 {
        tokens * self.kv_bytes_per_token()
    }

    /// FLOPs for decoding one token at context length `ctx`
    /// (weight GEMMs + attention over the cached context).
    pub fn decode_flops_per_token(&self, ctx: u64) -> f64 {
        let gemm = 2.0 * self.param_count() as f64;
        let attn = 4.0 * self.n_layers as f64 * (self.n_heads * self.head_dim) as f64 * ctx as f64;
        gemm + attn
    }

    /// FLOPs for prefilling `tokens` new tokens on top of `cached` cached
    /// tokens (causal attention; the quadratic term only spans new keys
    /// plus the cached prefix).
    pub fn prefill_flops(&self, tokens: u64, cached: u64) -> f64 {
        let t = tokens as f64;
        let gemm = 2.0 * self.param_count() as f64 * t;
        let q_dim = (self.n_heads * self.head_dim) as f64;
        // Each new token attends to `cached + its causal prefix` keys.
        let avg_keys = cached as f64 + (t + 1.0) / 2.0;
        let attn = 4.0 * self.n_layers as f64 * q_dim * t * avg_keys;
        gemm + attn
    }

    /// Short label used in figures, e.g. `"1.5B"` or `"7B"` (marketing
    /// sizes truncate rather than round: 7.6B parameters is a "7B" model).
    pub fn size_label(&self) -> String {
        let b = self.param_count() as f64 / 1e9;
        if b < 3.0 {
            format!("{:.1}B", b)
        } else {
            format!("{:.0}B", b.floor())
        }
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{} | {}]", self.name, self.size_label(), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qwen_1_5b_param_count_matches_marketing() {
        let m = ModelSpec::qwen25_math_1_5b();
        let b = m.param_count() as f64 / 1e9;
        assert!((1.4..1.7).contains(&b), "got {b}B");
    }

    #[test]
    fn qwen_7b_param_count_matches_marketing() {
        let m = ModelSpec::qwen25_math_7b();
        let b = m.param_count() as f64 / 1e9;
        assert!((7.0..8.0).contains(&b), "got {b}B");
    }

    #[test]
    fn mistral_7b_param_count_matches_marketing() {
        let m = ModelSpec::math_shepherd_7b();
        let b = m.param_count() as f64 / 1e9;
        assert!((7.0..7.6).contains(&b), "got {b}B");
    }

    #[test]
    fn kv_bytes_per_token_reflect_gqa() {
        // Qwen 1.5B has 2 KV heads * 128 dim * 28 layers * 2 (K,V) * 2 bytes.
        assert_eq!(ModelSpec::qwen25_math_1_5b().kv_bytes_per_token(), 28_672);
        // Mistral 7B: 8 KV heads -> 128 KiB per token.
        assert_eq!(ModelSpec::math_shepherd_7b().kv_bytes_per_token(), 131_072);
    }

    #[test]
    fn weight_bytes_are_two_bytes_per_param() {
        let m = ModelSpec::qwen25_math_7b();
        assert_eq!(m.weight_bytes(), 2 * m.param_count());
    }

    #[test]
    fn quantization_shrinks_weights_only() {
        let full = ModelSpec::qwen25_math_7b();
        let w8 = ModelSpec::qwen25_math_7b().quantized(8);
        let w4 = ModelSpec::qwen25_math_7b().quantized(4);
        assert_eq!(w8.weight_bytes(), full.weight_bytes() / 2);
        assert_eq!(w4.weight_bytes(), full.weight_bytes() / 4);
        // KV cache and compute are untouched by weight-only quantization.
        assert_eq!(w4.kv_bytes_per_token(), full.kv_bytes_per_token());
        assert_eq!(w4.param_count(), full.param_count());
        assert!(w4.name.ends_with("-W4"));
        assert_eq!(ModelSpec::qwen25_math_7b().quantized(16).name, full.name);
    }

    #[test]
    #[should_panic(expected = "unsupported weight quantization")]
    fn odd_quantization_bits_panic() {
        ModelSpec::qwen25_math_1_5b().quantized(3);
    }

    #[test]
    fn decode_flops_grow_with_context() {
        let m = ModelSpec::qwen25_math_1_5b();
        assert!(m.decode_flops_per_token(4096) > m.decode_flops_per_token(0));
        // The GEMM term dominates at short context.
        let base = m.decode_flops_per_token(0);
        assert!((base - 2.0 * m.param_count() as f64).abs() < 1.0);
    }

    #[test]
    fn prefill_flops_superlinear_in_tokens() {
        let m = ModelSpec::qwen25_math_1_5b();
        let one = m.prefill_flops(512, 0);
        let two = m.prefill_flops(1024, 0);
        assert!(two > 2.0 * one, "causal attention term must be superlinear");
    }

    #[test]
    fn prefill_flops_account_for_cached_prefix() {
        let m = ModelSpec::qwen25_math_1_5b();
        assert!(m.prefill_flops(128, 1024) > m.prefill_flops(128, 0));
    }

    #[test]
    fn skywork_shares_qwen_architecture() {
        let g = ModelSpec::qwen25_math_1_5b();
        let v = ModelSpec::skywork_prm_1_5b();
        assert_eq!(g.kv_bytes_per_token(), v.kv_bytes_per_token());
        assert_eq!(v.kind, ModelKind::DiscriminativePrm);
    }

    #[test]
    fn size_labels_are_compact() {
        assert_eq!(ModelSpec::qwen25_math_1_5b().size_label(), "1.5B");
        assert!(ModelSpec::math_shepherd_7b().size_label().ends_with('B'));
        let display = ModelSpec::qwen25_math_7b().to_string();
        assert!(display.contains("generator"));
    }
}
