//! GPU device specifications.
//!
//! The presets mirror the paper's evaluation platforms (Sec. 6.1 and 6.4):
//! a single RTX 4090 as the primary edge device, with RTX 4070 Ti and
//! RTX 3070 Ti for the constrained-hardware study (Fig. 15), plus
//! datacenter parts used only as the cloud reference point in Fig. 1.

use serde::{Deserialize, Serialize};

use crate::units::GIB;

/// Broad deployment class of a device, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Consumer / edge GPU (the paper's target).
    Edge,
    /// Datacenter GPU (cloud reference only).
    Cloud,
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceClass::Edge => write!(f, "edge"),
            DeviceClass::Cloud => write!(f, "cloud"),
        }
    }
}

/// Specification of a single GPU.
///
/// Peak numbers are dense BF16/FP16 tensor-core throughput; achievable
/// fractions are modeled separately by the kernel-efficiency factors so
/// that the roofline stays honest about real transformer kernels.
///
/// # Example
///
/// ```
/// use ftts_hw::GpuDevice;
/// let dev = GpuDevice::rtx4090();
/// assert_eq!(dev.vram_bytes, 24 * (1u64 << 30));
/// assert!(dev.effective_flops() < dev.peak_flops);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuDevice {
    /// Marketing name, e.g. `"RTX 4090"`.
    pub name: String,
    /// Deployment class.
    pub class: DeviceClass,
    /// Peak dense BF16 tensor throughput, in FLOP/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth, in bytes/s.
    pub mem_bandwidth: f64,
    /// Total VRAM, in bytes.
    pub vram_bytes: u64,
    /// Effective host link (PCIe) bandwidth for offloading, in bytes/s.
    pub pcie_bandwidth: f64,
    /// Fraction of peak compute achievable by fused transformer kernels.
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth achievable by streaming kernels.
    pub bandwidth_efficiency: f64,
}

impl GpuDevice {
    /// NVIDIA GeForce RTX 4090 (24 GB) — the paper's primary platform.
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX 4090".to_string(),
            class: DeviceClass::Edge,
            peak_flops: 165.2e12,
            mem_bandwidth: 1008.0e9,
            vram_bytes: 24 * GIB,
            pcie_bandwidth: 22.0e9,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.80,
        }
    }

    /// NVIDIA GeForce RTX 4070 Ti (12 GB) — constrained-hardware study.
    pub fn rtx4070ti() -> Self {
        Self {
            name: "RTX 4070 Ti".to_string(),
            class: DeviceClass::Edge,
            peak_flops: 80.1e12,
            mem_bandwidth: 504.2e9,
            vram_bytes: 12 * GIB,
            pcie_bandwidth: 22.0e9,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.80,
        }
    }

    /// NVIDIA GeForce RTX 3070 Ti (8 GB) — the most constrained device;
    /// the paper enables KV offloading here (Fig. 15).
    pub fn rtx3070ti() -> Self {
        Self {
            name: "RTX 3070 Ti".to_string(),
            class: DeviceClass::Edge,
            peak_flops: 43.5e12,
            mem_bandwidth: 608.3e9,
            vram_bytes: 8 * GIB,
            pcie_bandwidth: 12.0e9,
            compute_efficiency: 0.50,
            bandwidth_efficiency: 0.78,
        }
    }

    /// NVIDIA Jetson AGX Orin (64 GB, unified) — embedded-edge class
    /// for heterogeneous-fleet studies. The Ampere iGPU peaks around
    /// 10.6 dense BF16 TFLOPS with 204.8 GB/s LPDDR5; the "PCIe" link
    /// models the effective host-copy path through the unified memory
    /// controller.
    pub fn jetson_orin() -> Self {
        Self {
            name: "Jetson AGX Orin".to_string(),
            class: DeviceClass::Edge,
            peak_flops: 10.6e12,
            mem_bandwidth: 204.8e9,
            vram_bytes: 32 * GIB,
            pcie_bandwidth: 10.0e9,
            compute_efficiency: 0.45,
            bandwidth_efficiency: 0.72,
        }
    }

    /// NVIDIA A100-SXM4-80GB — cloud reference for Fig. 1.
    pub fn a100_80g() -> Self {
        Self {
            name: "A100 80GB".to_string(),
            class: DeviceClass::Cloud,
            peak_flops: 312.0e12,
            mem_bandwidth: 2039.0e9,
            vram_bytes: 80 * GIB,
            pcie_bandwidth: 55.0e9,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.82,
        }
    }

    /// NVIDIA H100-SXM5-80GB — cloud reference for Fig. 1.
    pub fn h100_80g() -> Self {
        Self {
            name: "H100 80GB".to_string(),
            class: DeviceClass::Cloud,
            peak_flops: 989.0e12,
            mem_bandwidth: 3350.0e9,
            vram_bytes: 80 * GIB,
            pcie_bandwidth: 100.0e9,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.82,
        }
    }

    /// All edge presets evaluated by the paper, largest first.
    pub fn edge_presets() -> Vec<Self> {
        vec![Self::rtx4090(), Self::rtx4070ti(), Self::rtx3070ti()]
    }

    /// Achievable compute throughput (`peak_flops * compute_efficiency`).
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.compute_efficiency
    }

    /// Achievable memory bandwidth
    /// (`mem_bandwidth * bandwidth_efficiency`).
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.bandwidth_efficiency
    }

    /// Machine-balance ridge point in FLOPs per byte: operational
    /// intensities above this are compute-bound on this device.
    pub fn ridge_point(&self) -> f64 {
        self.effective_flops() / self.effective_bandwidth()
    }

    /// Time to move `bytes` across the host link (used by KV offloading).
    pub fn pcie_transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.pcie_bandwidth
    }
}

impl std::fmt::Display for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({:.0} GB, {:.0} TFLOPS, {:.0} GB/s)",
            self.name,
            self.vram_bytes as f64 / GIB as f64,
            self.peak_flops / 1e12,
            self.mem_bandwidth / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_vram_ordering() {
        let devices = GpuDevice::edge_presets();
        assert_eq!(devices.len(), 3);
        for pair in devices.windows(2) {
            assert!(pair[0].vram_bytes > pair[1].vram_bytes);
        }
    }

    #[test]
    fn ridge_point_is_positive_and_finite() {
        for dev in GpuDevice::edge_presets() {
            assert!(dev.ridge_point() > 0.0);
            assert!(dev.ridge_point().is_finite());
        }
    }

    #[test]
    fn efficiency_factors_reduce_peaks() {
        let dev = GpuDevice::rtx4090();
        assert!(dev.effective_flops() < dev.peak_flops);
        assert!(dev.effective_bandwidth() < dev.mem_bandwidth);
    }

    #[test]
    fn pcie_transfer_scales_linearly() {
        let dev = GpuDevice::rtx3070ti();
        let one = dev.pcie_transfer_seconds(1_000_000_000);
        let two = dev.pcie_transfer_seconds(2_000_000_000);
        assert!((two - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn cloud_devices_are_classed_cloud() {
        assert_eq!(GpuDevice::a100_80g().class, DeviceClass::Cloud);
        assert_eq!(GpuDevice::h100_80g().class, DeviceClass::Cloud);
        assert_eq!(GpuDevice::rtx4090().class, DeviceClass::Edge);
    }

    #[test]
    fn jetson_orin_is_the_slowest_edge_part() {
        let orin = GpuDevice::jetson_orin();
        assert_eq!(orin.class, DeviceClass::Edge);
        for dev in GpuDevice::edge_presets() {
            assert!(orin.effective_flops() < dev.effective_flops());
            assert!(orin.effective_bandwidth() < dev.effective_bandwidth());
        }
        assert!(orin.ridge_point() > 0.0 && orin.ridge_point().is_finite());
    }

    #[test]
    fn display_mentions_name() {
        let s = GpuDevice::rtx4070ti().to_string();
        assert!(s.contains("RTX 4070 Ti"));
        assert_eq!(DeviceClass::Edge.to_string(), "edge");
    }
}
