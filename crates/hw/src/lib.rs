//! Hardware and model cost specifications for the FastTTS simulation stack.
//!
//! This crate is the foundation of the reproduction: it describes *what the
//! paper's testbed looks like in numbers* and exposes a roofline latency
//! model, the same first-principles performance law the paper's own
//! Asymmetric Multi-Model Memory Allocation uses (Sec. 4.3.1):
//!
//! ```text
//! T_roof = max(FLOPs / P, Bytes / BW)
//! ```
//!
//! The three building blocks are:
//!
//! * [`GpuDevice`] — peak compute, memory bandwidth, VRAM and PCIe numbers
//!   for the edge GPUs the paper evaluates (RTX 4090 / 4070 Ti / 3070 Ti)
//!   plus cloud reference parts.
//! * [`ModelSpec`] — architecture-accurate transformer shapes for the
//!   paper's generators and verifiers (Qwen2.5-Math-1.5B/7B,
//!   Math-Shepherd-Mistral-7B, Skywork-o1-PRM-1.5B), from which parameter
//!   counts, weight bytes, per-token KV bytes and FLOPs are derived.
//! * [`Roofline`] — batched prefill / decode step latencies and the
//!   utilization accounting used for the paper's Nsight-style traces
//!   (Fig. 4 and Fig. 17).
//!
//! # Example
//!
//! ```
//! use ftts_hw::{GpuDevice, ModelSpec, Roofline};
//!
//! let dev = GpuDevice::rtx4090();
//! let model = ModelSpec::qwen25_math_1_5b();
//! let roof = Roofline::new(dev, model);
//!
//! // A single-sequence decode step is memory-bound: it must stream the
//! // full weights once, so it takes a few milliseconds on a 4090.
//! let step = roof.decode_step(1, 1024);
//! assert!(step.seconds > 1e-3 && step.seconds < 10e-3);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod model;
mod roofline;
mod trace;
mod units;

pub use device::{DeviceClass, GpuDevice};
pub use model::{ModelKind, ModelSpec};
pub use roofline::{KernelCost, Phase, Roofline};
pub use trace::{UtilSample, UtilizationTrace};
pub use units::{GB, GIB, MB, MIB};
