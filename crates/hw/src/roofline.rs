//! Roofline latency model for batched prefill and decode kernels.
//!
//! This implements the paper's Sec. 4.3.1 performance law,
//! `T_roof = max(FLOPs/P, Bytes/BW)`, specialized to the two kernel shapes
//! a TTS serving system executes:
//!
//! * **Prefill** (verification): large GEMMs over whole sequences —
//!   compute-bound almost immediately, hence the verifier saturates with
//!   under 1 GB of KV cache (Fig. 6, left).
//! * **Decode** (generation): one token per sequence per step — every
//!   iteration must stream the full weights plus the batch's KV cache, so
//!   throughput keeps improving with batch size (and thus KV memory) far
//!   longer (Fig. 6, right).
//!
//! Each returned [`KernelCost`] also carries the compute-utilization
//! fraction used to reconstruct the paper's Nsight traces (Fig. 4 / 17).

use serde::{Deserialize, Serialize};

use crate::{GpuDevice, ModelSpec};

/// Which serving phase a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Generator decode (token-by-token generation).
    Generation,
    /// Verifier prefill (reasoning-step scoring).
    Verification,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Generation => write!(f, "generation"),
            Phase::Verification => write!(f, "verification"),
        }
    }
}

/// Cost of one simulated kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Wall-clock seconds under the roofline.
    pub seconds: f64,
    /// Total floating point work, in FLOPs.
    pub flops: f64,
    /// Total bytes moved to/from HBM.
    pub bytes: f64,
    /// Fraction of *peak* tensor throughput achieved in `[0, 1]`.
    pub compute_util: f64,
    /// Whether the compute term of the roofline dominated the memory term.
    pub compute_bound: bool,
}

impl KernelCost {
    /// A zero-cost kernel (empty batch).
    pub fn zero() -> Self {
        Self {
            seconds: 0.0,
            flops: 0.0,
            bytes: 0.0,
            compute_util: 0.0,
            compute_bound: false,
        }
    }
}

/// Roofline cost model for one model running on one device.
///
/// # Example
///
/// ```
/// use ftts_hw::{GpuDevice, ModelSpec, Roofline};
/// let roof = Roofline::new(GpuDevice::rtx4090(), ModelSpec::qwen25_math_1_5b());
/// // Larger decode batches amortize the weight sweep: total batch
/// // throughput rises even though the step takes slightly longer.
/// let b1 = roof.decode_step(1, 512);
/// let b64 = roof.decode_step(64, 512);
/// assert!(b64.seconds < 64.0 * b1.seconds);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    device: std::sync::Arc<GpuDevice>,
    model: std::sync::Arc<ModelSpec>,
}

impl Roofline {
    /// Create a cost model for `model` running on `device`.
    ///
    /// Accepts either owned specs or shared `Arc`s: the engine hands out
    /// `Arc` clones so building a per-request `Roofline` never deep-copies
    /// device/model descriptions.
    pub fn new(
        device: impl Into<std::sync::Arc<GpuDevice>>,
        model: impl Into<std::sync::Arc<ModelSpec>>,
    ) -> Self {
        Self {
            device: device.into(),
            model: model.into(),
        }
    }

    /// Device this model runs on.
    pub fn device(&self) -> &GpuDevice {
        self.device.as_ref()
    }

    /// Model being costed.
    pub fn model(&self) -> &ModelSpec {
        self.model.as_ref()
    }

    fn roofline_seconds(&self, flops: f64, bytes: f64) -> f64 {
        let t_compute = flops / self.device.effective_flops();
        let t_memory = bytes / self.device.effective_bandwidth();
        t_compute.max(t_memory)
    }

    fn cost(&self, flops: f64, bytes: f64) -> KernelCost {
        if flops <= 0.0 && bytes <= 0.0 {
            return KernelCost::zero();
        }
        let seconds = self.roofline_seconds(flops, bytes);
        let compute_util = if seconds > 0.0 {
            (flops / seconds / self.device.peak_flops).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let compute_bound =
            flops / self.device.effective_flops() >= bytes / self.device.effective_bandwidth();
        KernelCost {
            seconds,
            flops,
            bytes,
            compute_util,
            compute_bound,
        }
    }

    /// Cost of one decode iteration: `batch` sequences each produce one
    /// token, with mean cached context `avg_ctx` tokens.
    ///
    /// Bytes = one full weight sweep (shared by the batch) + reading each
    /// sequence's KV cache + writing one new KV entry per sequence.
    pub fn decode_step(&self, batch: usize, avg_ctx: u64) -> KernelCost {
        if batch == 0 {
            return KernelCost::zero();
        }
        let b = batch as f64;
        let flops = b * self.model.decode_flops_per_token(avg_ctx);
        let kv_per_token = self.model.kv_bytes_per_token() as f64;
        let bytes =
            self.model.weight_bytes() as f64 + b * avg_ctx as f64 * kv_per_token + b * kv_per_token;
        self.cost(flops, bytes)
    }

    /// Cost of prefilling one sequence: `new_tokens` fresh tokens on top
    /// of a `cached_tokens`-long cached prefix.
    pub fn prefill(&self, new_tokens: u64, cached_tokens: u64) -> KernelCost {
        self.prefill_batch(1, new_tokens, cached_tokens)
    }

    /// Cost of prefilling `batch` sequences, each adding `new_per_seq`
    /// fresh tokens on top of a `cached_per_seq`-long cached prefix.
    ///
    /// Attention is per-sequence: each new token attends to its own
    /// cached prefix plus its causal predecessors, never across batch
    /// members — getting this wrong overstates verifier cost
    /// quadratically in the batch size.
    pub fn prefill_batch(&self, batch: usize, new_per_seq: u64, cached_per_seq: u64) -> KernelCost {
        if batch == 0 || new_per_seq == 0 {
            return KernelCost::zero();
        }
        let flops = batch as f64 * self.model.prefill_flops(new_per_seq, cached_per_seq);
        let kv_per_token = self.model.kv_bytes_per_token() as f64;
        // Weights once, read the reused prefix KV, write KV for new tokens.
        let bytes = self.model.weight_bytes() as f64
            + batch as f64 * cached_per_seq as f64 * kv_per_token
            + batch as f64 * new_per_seq as f64 * kv_per_token;
        self.cost(flops, bytes)
    }

    /// Cost of one prefill sweep fused from heterogeneous sub-batches:
    /// each `(batch, new_per_seq, cached_per_seq)` part keeps its own
    /// attention shape (a fused kernel never changes per-sequence
    /// attention work), but the weight sweep is streamed **once** for
    /// the whole launch instead of once per part — exactly the saving
    /// cross-request verifier co-batching is after. With a single part
    /// this is identical to [`Roofline::prefill_batch`].
    pub fn prefill_fused(&self, parts: &[(usize, u64, u64)]) -> KernelCost {
        let mut flops = 0.0;
        let mut bytes = self.model.weight_bytes() as f64;
        let kv_per_token = self.model.kv_bytes_per_token() as f64;
        for &(batch, new_per_seq, cached_per_seq) in parts {
            if batch == 0 || new_per_seq == 0 {
                continue;
            }
            flops += batch as f64 * self.model.prefill_flops(new_per_seq, cached_per_seq);
            bytes += batch as f64 * cached_per_seq as f64 * kv_per_token;
            bytes += batch as f64 * new_per_seq as f64 * kv_per_token;
        }
        if flops <= 0.0 {
            return KernelCost::zero();
        }
        self.cost(flops, bytes)
    }

    /// Cost of moving `bytes` of KV between device and host tiers over
    /// the host link (swap-down at preemption, swap-in at warm restore).
    ///
    /// Pure data movement: zero FLOPs, seconds equal to
    /// [`GpuDevice::pcie_transfer_seconds`] — so tier-aware schedulers
    /// charging through this kernel book exactly the same wall-clock as
    /// the legacy direct PCIe costing and the equivalence anchors hold.
    pub fn swap_transfer(&self, bytes: u64) -> KernelCost {
        if bytes == 0 {
            return KernelCost::zero();
        }
        KernelCost {
            seconds: self.device.pcie_transfer_seconds(bytes),
            flops: 0.0,
            bytes: bytes as f64,
            compute_util: 0.0,
            compute_bound: false,
        }
    }

    /// Batch decode throughput in tokens/second at the given batch size
    /// and context (used by the memory-allocation search, Fig. 10).
    pub fn decode_throughput(&self, batch: usize, avg_ctx: u64) -> f64 {
        let c = self.decode_step(batch, avg_ctx);
        if c.seconds == 0.0 {
            0.0
        } else {
            batch as f64 / c.seconds
        }
    }

    /// Batch prefill throughput in tokens/second for sequences of length
    /// `seq` processed `batch` at a time.
    pub fn prefill_throughput(&self, batch: usize, seq: u64) -> f64 {
        let tokens = batch as u64 * seq;
        let c = self.prefill_batch(batch, seq, 0);
        if c.seconds == 0.0 {
            0.0
        } else {
            tokens as f64 / c.seconds
        }
    }

    /// Maximum decode batch size representable in `kv_budget_bytes` of KV
    /// cache at per-sequence context `ctx`.
    pub fn max_decode_batch(&self, kv_budget_bytes: u64, ctx: u64) -> usize {
        let per_seq = self.model.kv_bytes(ctx).max(1);
        (kv_budget_bytes / per_seq) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roof_1_5b() -> Roofline {
        Roofline::new(GpuDevice::rtx4090(), ModelSpec::qwen25_math_1_5b())
    }

    #[test]
    fn single_stream_decode_is_bandwidth_bound() {
        let c = roof_1_5b().decode_step(1, 256);
        // The weight sweep dominates: ~3.1 GB over ~806 GB/s ≈ 3.8 ms.
        assert!(c.seconds > 3e-3 && c.seconds < 6e-3, "got {}", c.seconds);
        assert!(
            c.compute_util < 0.10,
            "decode must be low-util, got {}",
            c.compute_util
        );
    }

    #[test]
    fn prefill_is_compute_bound_at_modest_batch() {
        let c = roof_1_5b().prefill(8 * 640, 0);
        assert!(
            c.compute_util > 0.4,
            "prefill util too low: {}",
            c.compute_util
        );
        assert!(c.compute_bound);
        assert!(!roof_1_5b().decode_step(1, 256).compute_bound);
    }

    #[test]
    fn decode_throughput_increases_with_batch() {
        let roof = roof_1_5b();
        let mut last = 0.0;
        for b in [1usize, 4, 16, 64, 256] {
            let thr = roof.decode_throughput(b, 512);
            assert!(thr > last, "throughput must rise with batch size");
            last = thr;
        }
    }

    #[test]
    fn decode_throughput_saturates_sublinearly() {
        let roof = roof_1_5b();
        let t64 = roof.decode_throughput(64, 2048);
        let t512 = roof.decode_throughput(512, 2048);
        assert!(t512 < 8.0 * t64, "KV traffic must bend the curve");
    }

    #[test]
    fn prefill_saturates_much_faster_than_decode() {
        // Reproduces the *shape* of Fig. 6: fraction of asymptotic
        // throughput reached with a fixed small KV budget is far higher
        // for prefill than for decode.
        let roof = roof_1_5b();
        let kv_budget = crate::GB; // 1 GB
        let seq = 640u64;
        let b_pre = roof.max_decode_batch(kv_budget, seq).max(1);
        let pre_frac = roof.prefill_throughput(b_pre, seq) / roof.prefill_throughput(4096, seq);
        let dec_ctx = 512u64;
        let b_dec = roof.max_decode_batch(kv_budget, dec_ctx).max(1);
        let dec_frac =
            roof.decode_throughput(b_dec, dec_ctx) / roof.decode_throughput(65_536, dec_ctx);
        assert!(
            pre_frac > 0.8,
            "prefill should hit >80% with 1 GB, got {pre_frac}"
        );
        assert!(
            dec_frac < pre_frac,
            "decode must saturate slower: {dec_frac} vs {pre_frac}"
        );
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let roof = roof_1_5b();
        assert_eq!(roof.decode_step(0, 100), KernelCost::zero());
        assert_eq!(roof.prefill(0, 100), KernelCost::zero());
        assert_eq!(roof.decode_throughput(0, 100), 0.0);
    }

    #[test]
    fn max_decode_batch_respects_budget() {
        let roof = roof_1_5b();
        let ctx = 1024u64;
        let b = roof.max_decode_batch(2 * crate::GB, ctx);
        let used = b as u64 * roof.model().kv_bytes(ctx);
        assert!(used <= 2 * crate::GB);
        let next = (b as u64 + 1) * roof.model().kv_bytes(ctx);
        assert!(next > 2 * crate::GB);
    }

    #[test]
    fn bigger_model_is_slower() {
        let small = roof_1_5b().decode_step(8, 512).seconds;
        let big = Roofline::new(GpuDevice::rtx4090(), ModelSpec::qwen25_math_7b())
            .decode_step(8, 512)
            .seconds;
        assert!(big > 3.0 * small);
    }

    #[test]
    fn cached_prefix_reduces_prefill_cost() {
        let roof = roof_1_5b();
        let cold = roof.prefill(1024, 0);
        let warm = roof.prefill(256, 768);
        assert!(warm.seconds < cold.seconds);
    }

    #[test]
    fn batched_prefill_attends_per_sequence() {
        let roof = roof_1_5b();
        // 8 sequences of 640 tokens do strictly less attention work than
        // one 5120-token sequence.
        let batched = roof.prefill_batch(8, 640, 0);
        let monolith = roof.prefill(8 * 640, 0);
        assert!(batched.flops < monolith.flops);
        assert!(batched.seconds < monolith.seconds);
        assert_eq!(roof.prefill_batch(0, 100, 0), KernelCost::zero());
    }

    #[test]
    fn fused_prefill_amortizes_the_weight_sweep_only() {
        let roof = roof_1_5b();
        let a = (4usize, 300u64, 600u64);
        let b = (2usize, 900u64, 100u64);
        let fused = roof.prefill_fused(&[a, b]);
        let solo_a = roof.prefill_batch(a.0, a.1, a.2);
        let solo_b = roof.prefill_batch(b.0, b.1, b.2);
        // Per-sequence attention work is preserved exactly...
        assert!((fused.flops - (solo_a.flops + solo_b.flops)).abs() < 1.0);
        // ...but the weights are streamed once, not twice.
        let w = roof.model().weight_bytes() as f64;
        assert!((fused.bytes - (solo_a.bytes + solo_b.bytes - w)).abs() < 1.0);
        assert!(fused.seconds <= solo_a.seconds + solo_b.seconds);
        // One part degenerates to the uniform batch cost.
        assert_eq!(roof.prefill_fused(&[a]), roof.prefill_batch(a.0, a.1, a.2));
        assert_eq!(roof.prefill_fused(&[]), KernelCost::zero());
        assert_eq!(roof.prefill_fused(&[(0, 10, 0)]), KernelCost::zero());
    }

    #[test]
    fn phase_display_is_stable() {
        assert_eq!(Phase::Generation.to_string(), "generation");
        assert_eq!(Phase::Verification.to_string(), "verification");
    }
}
