//! Byte-quantity constants shared across the workspace.

/// One decimal megabyte (10^6 bytes), as used in GPU marketing bandwidth.
pub const MB: u64 = 1_000_000;
/// One decimal gigabyte (10^9 bytes).
pub const GB: u64 = 1_000_000_000;
/// One binary mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One binary gibibyte (2^30 bytes), as used for VRAM capacities.
pub const GIB: u64 = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the unit under test
    fn binary_units_are_larger_than_decimal() {
        assert!(GIB > GB);
        assert!(MIB > MB);
        assert_eq!(GIB, 1024 * MIB);
    }
}
