//! Fixed-capacity block pool.

use serde::{Deserialize, Serialize};

/// A counting allocator over a fixed budget of KV blocks.
///
/// The simulation does not need physical block identities — only exact
/// occupancy accounting — so the pool tracks counts. All block ownership
/// bookkeeping (which node owns how many blocks) lives in the prefix tree.
///
/// # Example
///
/// ```
/// use ftts_kv::BlockPool;
/// let mut pool = BlockPool::new(10);
/// assert!(pool.try_alloc(7));
/// assert!(!pool.try_alloc(4));
/// pool.free(3);
/// assert!(pool.try_alloc(4));
/// assert_eq!(pool.used(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPool {
    capacity: u64,
    used: u64,
    peak_used: u64,
}

impl BlockPool {
    /// Create a pool holding `capacity` blocks.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            peak_used: 0,
        }
    }

    /// Total capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Blocks currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Blocks currently free (zero while occupancy exceeds a shrunken
    /// capacity).
    pub fn free_blocks(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// High-water mark of allocation.
    ///
    /// # Invariant
    ///
    /// `peak_used` is a *lifetime* maximum of `used`: it is monotone
    /// non-decreasing, never reset by [`BlockPool::resize`], and may
    /// therefore exceed the *current* capacity after the pool shrinks
    /// (it is bounded by the largest capacity under which allocations
    /// were served). Callers comparing peak occupancy against capacity
    /// across repartitions must track the capacity history themselves.
    pub fn peak_used(&self) -> u64 {
        debug_assert!(
            self.peak_used >= self.used,
            "peak must dominate current occupancy"
        );
        self.peak_used
    }

    /// Attempt to allocate `n` blocks; returns `false` (allocating
    /// nothing) if fewer than `n` are free.
    #[must_use]
    pub fn try_alloc(&mut self, n: u64) -> bool {
        if self.used + n > self.capacity {
            return false;
        }
        self.used += n;
        self.peak_used = self.peak_used.max(self.used);
        true
    }

    /// Return `n` blocks to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the number of allocated blocks (a
    /// double-free in the caller's bookkeeping).
    pub fn free(&mut self, n: u64) {
        assert!(
            n <= self.used,
            "freeing {n} blocks but only {} allocated",
            self.used
        );
        self.used -= n;
    }

    /// Blocks by which occupancy exceeds the current capacity — nonzero
    /// only after a shrink below occupancy (an elastic-share rebalance
    /// or an asymmetric repartition). The owner works the deficit off
    /// through eviction; until then no allocation can succeed.
    pub fn deficit(&self) -> u64 {
        self.used.saturating_sub(self.capacity)
    }

    /// Resize the pool capacity (used when the memory allocator
    /// repartitions KV between generator and verifier at run time).
    ///
    /// Shrinking below current occupancy is allowed; the pool simply
    /// reports no free blocks until enough are freed. `peak_used` is
    /// deliberately **not** refreshed: it stays the lifetime high-water
    /// mark (see [`BlockPool::peak_used`]), so a shrink can leave
    /// `peak_used() > capacity()`. Occupancy itself is untouched — a
    /// repartition never deallocates.
    pub fn resize(&mut self, capacity: u64) {
        self.capacity = capacity;
        debug_assert!(
            self.peak_used >= self.used,
            "resize must not disturb occupancy accounting"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = BlockPool::new(5);
        assert!(p.try_alloc(5));
        assert_eq!(p.free_blocks(), 0);
        p.free(5);
        assert_eq!(p.free_blocks(), 5);
        assert_eq!(p.peak_used(), 5);
    }

    #[test]
    fn failed_alloc_changes_nothing() {
        let mut p = BlockPool::new(3);
        assert!(p.try_alloc(2));
        assert!(!p.try_alloc(2));
        assert_eq!(p.used(), 2);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut p = BlockPool::new(3);
        assert!(p.try_alloc(1));
        p.free(2);
    }

    #[test]
    fn resize_can_shrink_below_occupancy() {
        let mut p = BlockPool::new(10);
        assert!(p.try_alloc(8));
        assert_eq!(p.deficit(), 0);
        p.resize(4);
        assert_eq!(p.free_blocks(), 0);
        assert_eq!(p.deficit(), 4, "shrink below occupancy leaves a deficit");
        assert!(!p.try_alloc(1));
        p.free(8);
        assert_eq!(p.deficit(), 0);
        assert!(p.try_alloc(4));
    }

    #[test]
    fn resize_preserves_peak_semantics_across_repartitions() {
        // Regression test for the documented `peak_used` invariant: the
        // high-water mark is a lifetime maximum — monotone, unaffected
        // by repartitions in either direction, and allowed to exceed a
        // shrunken capacity.
        let mut p = BlockPool::new(10);
        assert!(p.try_alloc(8));
        assert_eq!(p.peak_used(), 8);
        // Shrink below both occupancy and peak: peak must survive.
        p.resize(4);
        assert_eq!(
            p.peak_used(),
            8,
            "shrink must not clamp the high-water mark"
        );
        assert_eq!(p.used(), 8, "repartition never deallocates");
        // Grow again and allocate past the old peak: peak advances.
        p.resize(20);
        p.free(2);
        assert!(p.try_alloc(6));
        assert_eq!(p.used(), 12);
        assert_eq!(p.peak_used(), 12);
        // Draining does not lower the peak.
        p.free(12);
        assert_eq!(p.used(), 0);
        assert_eq!(p.peak_used(), 12);
    }
}
