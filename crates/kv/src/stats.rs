//! Cache event counters.

use serde::{Deserialize, Serialize};

/// Cumulative counters describing KV-cache behaviour over a run.
///
/// These are the quantities the paper's memory-oriented figures plot:
/// evicted blocks (Fig. 8 example / Fig. 18-left), recomputed prefix
/// tokens (the latency cost of evictions), and copy-on-write overhead of
/// beam branching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Blocks evicted from GPU memory.
    pub evicted_blocks: u64,
    /// Tokens whose KV entries were discarded and must be re-prefetched
    /// by recomputation when their path is next scheduled.
    pub evicted_tokens: u64,
    /// Tokens actually re-prefilled due to earlier evictions.
    pub recomputed_tokens: u64,
    /// Partial boundary blocks duplicated by copy-on-write forks.
    pub cow_blocks: u64,
    /// Blocks moved to host memory by offloading.
    pub swapped_out_blocks: u64,
    /// Blocks moved back from host memory.
    pub swapped_in_blocks: u64,
    /// Total block allocations served.
    pub allocated_blocks: u64,
    /// Blocks voluntarily discarded (dead speculative work) — unlike
    /// `evicted_blocks`, these do not indicate memory pressure.
    pub discarded_blocks: u64,
    /// Blocks dropped by injected device KV loss: unlike swapped-out
    /// blocks there is no host copy, so the affected paths must be
    /// recomputed when next pinned.
    pub lost_blocks: u64,
    /// Blocks dropped at preemption because they exceeded the host
    /// tier's free capacity (capped swap-out overflow): no host copy,
    /// recompute on readmission.
    pub overflow_dropped_blocks: u64,
}

impl CacheStats {
    /// Bytes moved to/from the host given a block byte size (for PCIe
    /// transfer costing).
    pub fn swap_traffic_bytes(&self, block_bytes: u64) -> u64 {
        (self.swapped_out_blocks + self.swapped_in_blocks) * block_bytes
    }

    /// Difference of two snapshots (`self` later than `earlier`).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            evicted_blocks: self.evicted_blocks - earlier.evicted_blocks,
            evicted_tokens: self.evicted_tokens - earlier.evicted_tokens,
            recomputed_tokens: self.recomputed_tokens - earlier.recomputed_tokens,
            cow_blocks: self.cow_blocks - earlier.cow_blocks,
            swapped_out_blocks: self.swapped_out_blocks - earlier.swapped_out_blocks,
            swapped_in_blocks: self.swapped_in_blocks - earlier.swapped_in_blocks,
            allocated_blocks: self.allocated_blocks - earlier.allocated_blocks,
            discarded_blocks: self.discarded_blocks - earlier.discarded_blocks,
            lost_blocks: self.lost_blocks - earlier.lost_blocks,
            overflow_dropped_blocks: self.overflow_dropped_blocks - earlier.overflow_dropped_blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_traffic_counts_both_directions() {
        let s = CacheStats {
            swapped_out_blocks: 3,
            swapped_in_blocks: 2,
            ..Default::default()
        };
        assert_eq!(s.swap_traffic_bytes(100), 500);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let early = CacheStats {
            evicted_blocks: 1,
            allocated_blocks: 10,
            ..Default::default()
        };
        let late = CacheStats {
            evicted_blocks: 4,
            allocated_blocks: 25,
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.evicted_blocks, 3);
        assert_eq!(d.allocated_blocks, 15);
        assert_eq!(d.cow_blocks, 0);
    }
}
