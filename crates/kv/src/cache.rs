//! The KV-cache facade: residency, pinning, eviction and offload.
//!
//! # Eviction index
//!
//! Victim selection is LRU over *evictable* nodes — GPU-resident,
//! unpinned, with no GPU-resident children (leaf-first, so shared
//! prefixes outlive their sharers). The seed implementation rescanned
//! and re-sorted the whole node arena on every allocation miss
//! (`O(N log N)` per miss, quadratic over a run); the cache now
//! maintains the candidate set incrementally in a
//! `BTreeSet<(last_used, NodeId)>` updated at every residency / pin /
//! child-count transition, so each eviction costs `O(log N)` amortized.
//!
//! **Victim order is bit-identical to the seed scan.** The seed
//! algorithm snapshots the candidate list once per epoch (one pass of
//! its retry loop), evicts in `(last_used, NodeId)` order, and only
//! considers parents exposed by those evictions in the *next* epoch.
//! [`KvCache::alloc_with_eviction`] reproduces exactly that without
//! copying anything: victims are drained from the index with
//! `pop_first`, and candidates exposed mid-epoch (parents of evicted
//! leaves) are parked in a pending buffer that merges back at the epoch
//! boundary. The equivalence is enforced two ways: `debug_assert!`s
//! compare the index against a brute-force scan at every epoch, and
//! `tests/properties.rs` replays randomized workloads against a cache
//! pinned to the seed scan path ([`KvCache::set_scan_eviction`])
//! comparing full eviction logs.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::pool::BlockPool;
use crate::stats::CacheStats;
use crate::tree::{PrefixTree, Residency};
use crate::NodeId;

/// Configuration of a [`KvCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvCacheConfig {
    /// Tokens per KV block (vLLM default is 16).
    pub block_size: u64,
    /// GPU memory budget for this cache, in bytes.
    pub capacity_bytes: u64,
    /// KV bytes written per token (from `ModelSpec::kv_bytes_per_token`).
    pub bytes_per_token: u64,
    /// Whether forks share ancestor blocks (prefix caching). Disable to
    /// model the "w/o prefix cache" baseline of Fig. 5.
    pub prefix_sharing: bool,
}

impl KvCacheConfig {
    /// Bytes per block.
    pub fn block_bytes(&self) -> u64 {
        self.block_size * self.bytes_per_token
    }

    /// Capacity expressed in whole blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_bytes / self.block_bytes().max(1)
    }
}

/// Errors returned by cache operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The pool cannot satisfy an allocation even after evicting
    /// everything evictable. Carries (blocks needed, blocks obtainable).
    InsufficientMemory {
        /// Blocks the operation required.
        needed: u64,
        /// Blocks free plus evictable at the time of failure.
        obtainable: u64,
    },
    /// `extend` called on a node that already has children.
    ExtendNonLeaf(NodeId),
    /// Operation requires the node to be pinned and GPU-resident.
    NotResident(NodeId),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::InsufficientMemory { needed, obtainable } => {
                write!(
                    f,
                    "insufficient KV memory: need {needed} blocks, obtainable {obtainable}"
                )
            }
            KvError::ExtendNonLeaf(id) => write!(f, "cannot extend non-leaf node {id}"),
            KvError::NotResident(id) => write!(f, "node {id} is not pinned and resident"),
        }
    }
}

impl std::error::Error for KvError {}

/// Cost incurred by making a pinned path resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PinCost {
    /// Tokens that must be recomputed (re-prefilled) because their blocks
    /// were evicted.
    pub recompute_tokens: u64,
    /// Bytes that must be transferred back from host memory (offload).
    pub transfer_in_bytes: u64,
    /// Fresh blocks allocated (including copy-on-write boundary copies).
    pub allocated_blocks: u64,
}

impl PinCost {
    /// Whether the pin was free (everything already resident).
    pub fn is_hit(&self) -> bool {
        self.recompute_tokens == 0 && self.transfer_in_bytes == 0
    }

    /// Accumulate another cost into this one.
    pub fn merge(&mut self, other: PinCost) {
        self.recompute_tokens += other.recompute_tokens;
        self.transfer_in_bytes += other.transfer_in_bytes;
        self.allocated_blocks += other.allocated_blocks;
    }
}

/// A paged, prefix-shared KV cache with LRU eviction and host offload.
///
/// See the crate-level documentation for the model; the engine drives it
/// through five verbs: [`root`](KvCache::root) / [`fork`](KvCache::fork)
/// create sequences, [`pin`](KvCache::pin) makes a path resident (paying
/// recompute/transfer costs), [`extend`](KvCache::extend) appends decoded
/// tokens, and [`unpin`](KvCache::unpin) returns the path to evictable
/// cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvCache {
    config: KvCacheConfig,
    tree: PrefixTree,
    pool: BlockPool,
    stats: CacheStats,
    /// Incrementally maintained eviction candidates, keyed by
    /// `(last_used, NodeId)` — exactly the seed scan's sort key.
    evictable: BTreeSet<(u64, NodeId)>,
    /// Running sum of `owned_blocks` over GPU-resident unpinned nodes
    /// (the seed's `evictable_blocks()` scan, maintained incrementally).
    unpinned_gpu_blocks: u64,
    /// Route allocations through the seed's full-scan victim selection
    /// instead of the index (equivalence-oracle mode; see module docs).
    scan_eviction: bool,
    /// When present, every evicted node id is appended here in order.
    eviction_log: Option<Vec<NodeId>>,
    /// True while an eviction epoch is draining the index: candidates
    /// exposed mid-epoch (parents of evicted leaves) are parked in
    /// `pending_candidates` so they only become eligible next epoch —
    /// exactly the seed scan's snapshot semantics, without copying the
    /// candidate set.
    epoch_active: bool,
    /// Candidates exposed during the current epoch, merged into
    /// `evictable` when the epoch ends.
    pending_candidates: Vec<(u64, NodeId)>,
}

impl KvCache {
    /// Create an empty cache.
    pub fn new(config: KvCacheConfig) -> Self {
        let tree = PrefixTree::new(config.block_size, config.prefix_sharing);
        let pool = BlockPool::new(config.capacity_blocks());
        Self {
            config,
            tree,
            pool,
            stats: CacheStats::default(),
            evictable: BTreeSet::new(),
            unpinned_gpu_blocks: 0,
            scan_eviction: false,
            eviction_log: None,
            epoch_active: false,
            pending_candidates: Vec::new(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &KvCacheConfig {
        &self.config
    }

    /// Cumulative event counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Blocks currently resident on the GPU.
    pub fn gpu_blocks_used(&self) -> u64 {
        self.pool.used()
    }

    /// Bytes currently resident on the GPU.
    pub fn gpu_bytes_used(&self) -> u64 {
        self.pool.used() * self.config.block_bytes()
    }

    /// Peak GPU blocks ever resident.
    pub fn peak_blocks_used(&self) -> u64 {
        self.pool.peak_used()
    }

    /// Number of nodes in the prefix tree.
    pub fn node_count(&self) -> usize {
        self.tree.len()
    }

    /// Repartition this cache's capacity at run time (Asymmetric
    /// Multi-Model Memory Allocation adjusts budgets on state changes).
    pub fn set_capacity_bytes(&mut self, capacity_bytes: u64) {
        self.config.capacity_bytes = capacity_bytes;
        self.pool.resize(self.config.capacity_blocks());
    }

    /// Blocks of occupancy in excess of the current capacity (see
    /// [`BlockPool::deficit`]) — nonzero only right after an elastic
    /// share rebalance or repartition shrank this cache below what it
    /// holds; eviction works it off on the next allocations.
    ///
    /// [`BlockPool::deficit`]: crate::BlockPool::deficit
    pub fn block_deficit(&self) -> u64 {
        self.pool.deficit()
    }

    /// Create a new independent sequence (a prompt) of `tokens` tokens.
    /// The node starts absent; `pin` it before use.
    ///
    /// # Errors
    ///
    /// Never fails today, but returns `Result` for interface stability
    /// with `fork`.
    pub fn root(&mut self, tokens: u64) -> Result<NodeId, KvError> {
        Ok(self.tree.add_root(tokens))
    }

    /// Fork a child continuing after all of `parent`'s tokens.
    ///
    /// # Errors
    ///
    /// Never fails today; see [`KvCache::root`].
    pub fn fork(&mut self, parent: NodeId) -> Result<NodeId, KvError> {
        let keep = self.tree.node(parent).n_tokens;
        self.fork_at(parent, keep)
    }

    /// Fork a child inheriting only the first `keep_tokens` of `parent`'s
    /// own tokens — used when a duplicate keeps a truncated speculative
    /// prefix (Alg. 1, line 19).
    ///
    /// # Errors
    ///
    /// Never fails today; see [`KvCache::root`].
    ///
    /// # Panics
    ///
    /// Panics if `keep_tokens` exceeds the parent's own token count.
    pub fn fork_at(&mut self, parent: NodeId, keep_tokens: u64) -> Result<NodeId, KvError> {
        Ok(self.tree.fork_at(parent, keep_tokens))
    }

    /// Sequence length in tokens of the path ending at `node`.
    pub fn seq_tokens(&self, node: NodeId) -> u64 {
        self.tree.seq_tokens(node)
    }

    /// Tokens owned by `node` itself (appended after its fork point).
    pub fn own_tokens(&self, node: NodeId) -> u64 {
        self.tree.node(node).n_tokens
    }

    /// Shared prefix length in tokens between two sequences (the paper's
    /// `P(c_i, c_j)`).
    pub fn shared_prefix(&self, a: NodeId, b: NodeId) -> u64 {
        self.tree.shared_prefix(a, b)
    }

    /// Current residency of a node.
    pub fn residency(&self, node: NodeId) -> Residency {
        self.tree.node(node).residency
    }

    /// Whether the node is pinned.
    pub fn is_pinned(&self, node: NodeId) -> bool {
        self.tree.node(node).pin_count > 0
    }

    /// Blocks obtainable right now: free plus evictable.
    pub fn obtainable_blocks(&self) -> u64 {
        self.pool.free_blocks() + self.evictable_blocks()
    }

    /// Blocks free right now without evicting anything.
    pub fn free_blocks(&self) -> u64 {
        self.pool.free_blocks()
    }

    fn evictable_blocks(&self) -> u64 {
        self.unpinned_gpu_blocks
    }

    /// Whether `id` satisfies the eviction-candidate predicate.
    fn is_eviction_candidate(&self, id: NodeId) -> bool {
        let node = self.tree.node(id);
        node.residency == Residency::Gpu && node.pin_count == 0 && node.gpu_children == 0
    }

    /// (Re-)derive `id`'s membership in the eviction index after any
    /// state transition that may have changed the predicate. During an
    /// eviction epoch, newly eligible candidates are parked so they only
    /// enter the index at the epoch boundary (seed snapshot semantics).
    fn reindex(&mut self, id: NodeId) {
        let key = (self.tree.node(id).last_used, id);
        if self.is_eviction_candidate(id) {
            if self.epoch_active {
                // Mid-epoch the predicate can only ever *gain* members
                // (evicting a leaf exposes its parent); removals cannot
                // occur, so parking inserts is sufficient.
                self.pending_candidates.push(key);
            } else {
                self.evictable.insert(key);
            }
        } else {
            self.evictable.remove(&key);
        }
    }

    /// Close an eviction epoch: newly exposed candidates become eligible.
    fn end_epoch(&mut self) {
        self.epoch_active = false;
        while let Some(key) = self.pending_candidates.pop() {
            self.evictable.insert(key);
        }
    }

    /// Track a pin-count transition across zero for block accounting and
    /// the eviction index.
    fn on_pin_transition(&mut self, id: NodeId, now_pinned: bool) {
        if self.tree.node(id).residency == Residency::Gpu {
            let owned = self.tree.node(id).owned_blocks;
            if now_pinned {
                self.unpinned_gpu_blocks -= owned;
            } else {
                self.unpinned_gpu_blocks += owned;
            }
        }
        self.reindex(id);
    }

    /// The seed's brute-force candidate scan, kept as the equivalence
    /// oracle for the incremental index (scan mode + debug assertions).
    fn scan_evictable_sorted(&self) -> Vec<(u64, NodeId)> {
        let mut candidates: Vec<(u64, NodeId)> = self
            .tree
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| {
                node.residency == Residency::Gpu && node.pin_count == 0 && node.gpu_children == 0
            })
            .map(|(i, node)| (node.last_used, NodeId(i as u32)))
            .collect();
        candidates.sort_unstable();
        candidates
    }

    /// Evict least-recently-used unpinned subtrees until `n` blocks can
    /// be allocated, then allocate them.
    ///
    /// Epoch semantics (identical to the seed scan): each pass of the
    /// retry loop is one *epoch* that only considers candidates eligible
    /// at its start, in `(last_used, NodeId)` order; parents exposed by
    /// mid-epoch evictions are parked and become eligible next epoch.
    /// The indexed path drains victims with `pop_first` — amortized
    /// `O(log N)` per eviction, with no per-miss copy of the candidate
    /// set — while the scan-oracle path reproduces the seed's full
    /// rescan for equivalence testing.
    fn alloc_with_eviction(&mut self, n: u64) -> Result<(), KvError> {
        if self.pool.try_alloc(n) {
            self.stats.allocated_blocks += n;
            return Ok(());
        }
        if self.scan_eviction {
            return self.alloc_with_eviction_scan(n);
        }
        loop {
            debug_assert_eq!(
                self.evictable.iter().copied().collect::<Vec<_>>(),
                self.scan_evictable_sorted(),
                "eviction index diverged from brute-force scan"
            );
            if self.evictable.is_empty() {
                return Err(KvError::InsufficientMemory {
                    needed: n,
                    obtainable: self.pool.free_blocks() + self.evictable_blocks(),
                });
            }
            self.epoch_active = true;
            while let Some((_, id)) = self.evictable.pop_first() {
                debug_assert!(self.is_eviction_candidate(id), "stale index entry");
                self.evict_node(id);
                if self.pool.try_alloc(n) {
                    self.stats.allocated_blocks += n;
                    self.end_epoch();
                    return Ok(());
                }
            }
            self.end_epoch();
            // Evicting leaves may have exposed new candidates; loop.
        }
    }

    /// The seed's allocation path: rescan and re-sort the whole arena
    /// every epoch. Kept verbatim as the equivalence oracle.
    fn alloc_with_eviction_scan(&mut self, n: u64) -> Result<(), KvError> {
        loop {
            let candidates = self.scan_evictable_sorted();
            if candidates.is_empty() {
                return Err(KvError::InsufficientMemory {
                    needed: n,
                    obtainable: self.pool.free_blocks() + self.evictable_blocks(),
                });
            }
            for (_, id) in candidates {
                self.evict_node(id);
                if self.pool.try_alloc(n) {
                    self.stats.allocated_blocks += n;
                    return Ok(());
                }
            }
        }
    }

    fn evict_node(&mut self, id: NodeId) {
        let (blocks, tokens, parent, last_used) = {
            let node = self.tree.node_mut(id);
            debug_assert_eq!(node.residency, Residency::Gpu);
            debug_assert_eq!(node.pin_count, 0);
            debug_assert_eq!(node.gpu_children, 0);
            node.residency = Residency::Absent;
            let blocks = node.owned_blocks;
            node.owned_blocks = 0;
            (blocks, node.n_tokens, node.parent, node.last_used)
        };
        self.evictable.remove(&(last_used, id));
        self.unpinned_gpu_blocks -= blocks;
        self.pool.free(blocks);
        self.stats.evicted_blocks += blocks;
        self.stats.evicted_tokens += tokens;
        if let Some(log) = &mut self.eviction_log {
            log.push(id);
        }
        if self.config.prefix_sharing {
            if let Some(p) = parent {
                self.tree.node_mut(p).gpu_children -= 1;
                self.reindex(p);
            }
        }
    }

    /// Make one node GPU-resident, assuming its prefix (if shared) is
    /// already resident. Returns the cost.
    fn restore_node(&mut self, id: NodeId) -> Result<PinCost, KvError> {
        let (residency, pad, n_tokens) = {
            let node = self.tree.node(id);
            (node.residency, node.pad, node.n_tokens)
        };
        let mut cost = PinCost::default();
        match residency {
            Residency::Gpu => {}
            Residency::Host => {
                let blocks = self.tree.blocks_for(pad, n_tokens);
                self.alloc_with_eviction(blocks)?;
                cost.transfer_in_bytes = blocks * self.config.block_bytes();
                cost.allocated_blocks = blocks;
                self.stats.swapped_in_blocks += blocks;
                self.finish_restore(id, blocks);
            }
            Residency::Absent => {
                let blocks = self.tree.blocks_for(pad, n_tokens);
                self.alloc_with_eviction(blocks)?;
                // Recompute the node's own tokens; with sharing disabled
                // the duplicated prefix (`pad`) must be recomputed too.
                cost.recompute_tokens = if self.config.prefix_sharing {
                    n_tokens
                } else {
                    pad + n_tokens
                };
                cost.allocated_blocks = blocks;
                self.stats.recomputed_tokens += cost.recompute_tokens;
                self.finish_restore(id, blocks);
            }
        }
        self.tree.touch(id);
        Ok(cost)
    }

    fn finish_restore(&mut self, id: NodeId, blocks: u64) {
        let parent = {
            let node = self.tree.node_mut(id);
            // Restores only happen under an active pin, so the node is
            // never an eviction candidate here and the unpinned-GPU
            // block sum is unaffected.
            debug_assert!(node.pin_count > 0, "restore outside a pin");
            node.residency = Residency::Gpu;
            node.owned_blocks = blocks;
            node.parent
        };
        // Without sharing each sequence is self-contained, so parents
        // impose no leaf-first eviction constraint.
        if self.config.prefix_sharing {
            if let Some(p) = parent {
                self.tree.node_mut(p).gpu_children += 1;
                self.reindex(p);
            }
        }
    }

    /// Pin the sequence ending at `leaf`: increment pin counts along the
    /// residency path and make every node on it GPU-resident, evicting
    /// other subtrees as needed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::InsufficientMemory`] (with pins rolled back) if
    /// the pool cannot hold the path even after evicting everything
    /// evictable.
    pub fn pin(&mut self, leaf: NodeId) -> Result<PinCost, KvError> {
        let path = self.tree.residency_path(leaf);
        for &id in &path {
            let node = self.tree.node_mut(id);
            node.pin_count += 1;
            if node.pin_count == 1 {
                self.on_pin_transition(id, true);
            }
        }
        let mut total = PinCost::default();
        for &id in &path {
            match self.restore_node(id) {
                Ok(cost) => total.merge(cost),
                Err(e) => {
                    for &undo in &path {
                        let node = self.tree.node_mut(undo);
                        node.pin_count -= 1;
                        if node.pin_count == 0 {
                            self.on_pin_transition(undo, false);
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(total)
    }

    /// Release a pin taken by [`KvCache::pin`]. The path stays resident
    /// as evictable cache.
    ///
    /// # Panics
    ///
    /// Panics if the path is not currently pinned.
    pub fn unpin(&mut self, leaf: NodeId) {
        for id in self.tree.residency_path(leaf) {
            let node = self.tree.node_mut(id);
            assert!(node.pin_count > 0, "unpin of unpinned node {id}");
            node.pin_count -= 1;
            if node.pin_count == 0 {
                self.on_pin_transition(id, false);
            }
        }
    }

    /// Append `tokens` decoded tokens to a pinned, resident leaf,
    /// allocating boundary blocks as the span grows.
    ///
    /// # Errors
    ///
    /// * [`KvError::ExtendNonLeaf`] if the node already forked children.
    /// * [`KvError::NotResident`] if the node is not pinned on the GPU.
    /// * [`KvError::InsufficientMemory`] if growth blocks cannot be
    ///   obtained; the node's tokens are unchanged in that case.
    pub fn extend(&mut self, leaf: NodeId, tokens: u64) -> Result<(), KvError> {
        let (n_children, pin_count, residency, pad, n_tokens, owned) = {
            let node = self.tree.node(leaf);
            (
                node.n_children,
                node.pin_count,
                node.residency,
                node.pad,
                node.n_tokens,
                node.owned_blocks,
            )
        };
        if n_children > 0 {
            return Err(KvError::ExtendNonLeaf(leaf));
        }
        if pin_count == 0 || residency != Residency::Gpu {
            return Err(KvError::NotResident(leaf));
        }
        if tokens == 0 {
            return Ok(());
        }
        let new_owned = self.tree.blocks_for(pad, n_tokens + tokens);
        let delta = new_owned - owned;
        if delta > 0 {
            self.alloc_with_eviction(delta)?;
        }
        // First physical materialization of a forked node performs the
        // copy-on-write boundary copy.
        if owned == 0 && pad > 0 {
            self.stats.cow_blocks += pad.div_ceil(self.config.block_size);
        }
        let node = self.tree.node_mut(leaf);
        node.n_tokens += tokens;
        node.owned_blocks = new_owned;
        self.tree.touch(leaf);
        Ok(())
    }

    /// Blocks that `pin(leaf)` followed by `extend(leaf, extra_tokens)`
    /// would need to allocate right now.
    pub fn blocks_needed(&self, leaf: NodeId, extra_tokens: u64) -> u64 {
        let mut needed = 0;
        for id in self.tree.residency_path(leaf) {
            let node = self.tree.node(id);
            if node.residency != Residency::Gpu {
                needed += self.tree.blocks_for(node.pad, node.n_tokens);
            }
        }
        let leaf_node = self.tree.node(leaf);
        let with_growth = self
            .tree
            .blocks_for(leaf_node.pad, leaf_node.n_tokens + extra_tokens);
        let current = if leaf_node.residency == Residency::Gpu {
            leaf_node.owned_blocks
        } else {
            self.tree.blocks_for(leaf_node.pad, leaf_node.n_tokens)
        };
        needed + (with_growth - current)
    }

    /// Whether pinning `leaf` and growing it by `extra_tokens` can
    /// succeed without evicting any *currently pinned* path.
    pub fn would_fit(&self, leaf: NodeId, extra_tokens: u64) -> bool {
        self.blocks_needed(leaf, extra_tokens) <= self.obtainable_blocks_for(leaf)
    }

    /// Blocks obtainable for pinning `leaf`: free plus evictable,
    /// excluding resident-but-unpinned blocks on `leaf`'s own path (those
    /// would be pinned, not evicted).
    pub fn obtainable_blocks_for(&self, leaf: NodeId) -> u64 {
        let path_unpinned: u64 = self
            .tree
            .residency_path(leaf)
            .iter()
            .map(|&id| {
                let n = self.tree.node(id);
                if n.residency == Residency::Gpu && n.pin_count == 0 {
                    n.owned_blocks
                } else {
                    0
                }
            })
            .sum();
        (self.pool.free_blocks() + self.evictable_blocks()).saturating_sub(path_unpinned)
    }

    /// Voluntarily free a dead node's blocks (e.g. unconsumed
    /// speculative work) so it cannot crowd out live prefixes under LRU.
    /// No-op unless the node is GPU-resident, unpinned and childless
    /// (shared blocks must outlive their sharers). Returns blocks freed.
    pub fn discard(&mut self, node: NodeId) -> u64 {
        let (ok, blocks, parent) = {
            let n = self.tree.node(node);
            (
                n.residency == Residency::Gpu
                    && n.pin_count == 0
                    && n.gpu_children == 0
                    && n.n_children == 0,
                n.owned_blocks,
                n.parent,
            )
        };
        if !ok {
            return 0;
        }
        {
            let n = self.tree.node_mut(node);
            n.residency = Residency::Absent;
            n.owned_blocks = 0;
        }
        self.unpinned_gpu_blocks -= blocks;
        self.reindex(node);
        self.pool.free(blocks);
        self.stats.discarded_blocks += blocks;
        if self.config.prefix_sharing {
            if let Some(p) = parent {
                self.tree.node_mut(p).gpu_children -= 1;
                self.reindex(p);
            }
        }
        blocks
    }

    /// Swap every unpinned GPU-resident node to host memory, freeing its
    /// blocks. Returns the number of bytes moved (for PCIe costing).
    pub fn swap_out_unpinned(&mut self) -> u64 {
        let ids: Vec<NodeId> = self
            .tree
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.residency == Residency::Gpu && n.pin_count == 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let mut blocks = 0;
        for id in ids {
            let (owned, parent) = {
                let node = self.tree.node_mut(id);
                node.residency = Residency::Host;
                let owned = node.owned_blocks;
                node.owned_blocks = 0;
                (owned, node.parent)
            };
            self.pool.free(owned);
            blocks += owned;
            if self.config.prefix_sharing {
                if let Some(p) = parent {
                    self.tree.node_mut(p).gpu_children -= 1;
                }
            }
        }
        // Every candidate was GPU-resident and unpinned, so the whole
        // index (and the unpinned-GPU block sum) empties at once;
        // remaining GPU nodes are pinned and thus not candidates.
        self.evictable.clear();
        self.unpinned_gpu_blocks = 0;
        self.stats.swapped_out_blocks += blocks;
        blocks * self.config.block_bytes()
    }

    /// Swap unpinned GPU-resident nodes to host memory until at most
    /// `cap_bytes` have moved, then *drop* the rest (no host copy —
    /// those paths become [`Residency::Absent`] and recompute when
    /// next pinned). This models a bounded host tier: parked KV beyond
    /// the tier's free capacity does not survive preemption.
    ///
    /// Nodes are visited in ascending [`NodeId`] order — parents are
    /// created before children, so shared prefixes (the most valuable
    /// KV to keep) claim the capped host space first. Returns
    /// `(swapped_bytes, dropped_bytes)`; with `cap_bytes == u64::MAX`
    /// this is exactly [`KvCache::swap_out_unpinned`].
    pub fn swap_out_unpinned_capped(&mut self, cap_bytes: u64) -> (u64, u64) {
        let block_bytes = self.config.block_bytes();
        let ids: Vec<NodeId> = self
            .tree
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.residency == Residency::Gpu && n.pin_count == 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let mut swapped = 0;
        let mut dropped = 0;
        for id in ids {
            let owned = self.tree.node(id).owned_blocks;
            let fits = (swapped + owned) * block_bytes <= cap_bytes;
            let (owned, tokens, parent) = {
                let node = self.tree.node_mut(id);
                node.residency = if fits {
                    Residency::Host
                } else {
                    Residency::Absent
                };
                let owned = node.owned_blocks;
                node.owned_blocks = 0;
                (owned, node.n_tokens, node.parent)
            };
            self.pool.free(owned);
            if fits {
                swapped += owned;
            } else {
                dropped += owned;
                self.stats.evicted_tokens += tokens;
            }
            if self.config.prefix_sharing {
                if let Some(p) = parent {
                    self.tree.node_mut(p).gpu_children -= 1;
                }
            }
        }
        // Same reasoning as `swap_out_unpinned`: every candidate was
        // GPU-resident and unpinned, so the index empties wholesale.
        self.evictable.clear();
        self.unpinned_gpu_blocks = 0;
        self.stats.swapped_out_blocks += swapped;
        self.stats.overflow_dropped_blocks += dropped;
        (swapped * block_bytes, dropped * block_bytes)
    }

    /// Drop every unpinned GPU-resident node *without* a host copy —
    /// the device-side KV blocks are lost (injected fault), so the
    /// affected paths become [`Residency::Absent`] and must be
    /// recomputed through the normal [`KvCache::pin`] path when next
    /// scheduled. Pinned nodes (mid-iteration) and host-resident nodes
    /// (swapped-out, i.e. preempted requests) survive: host RAM is not
    /// on the faulting device. Returns the number of blocks lost.
    ///
    /// Recovery is deterministic replay: the prefix tree keeps every
    /// node's logical token count, so the next pin recomputes exactly
    /// the lost tokens and no accepted work disappears.
    pub fn lose_unpinned(&mut self) -> u64 {
        let ids: Vec<NodeId> = self
            .tree
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.residency == Residency::Gpu && n.pin_count == 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let mut blocks = 0;
        for id in ids {
            let (owned, tokens, parent) = {
                let node = self.tree.node_mut(id);
                node.residency = Residency::Absent;
                let owned = node.owned_blocks;
                node.owned_blocks = 0;
                (owned, node.n_tokens, node.parent)
            };
            self.pool.free(owned);
            blocks += owned;
            self.stats.evicted_tokens += tokens;
            if self.config.prefix_sharing {
                if let Some(p) = parent {
                    self.tree.node_mut(p).gpu_children -= 1;
                }
            }
        }
        // Same reasoning as `swap_out_unpinned`: every candidate was
        // GPU-resident and unpinned, so the index empties wholesale.
        self.evictable.clear();
        self.unpinned_gpu_blocks = 0;
        self.stats.lost_blocks += blocks;
        blocks
    }

    /// GPU-resident tokens (physical, including copy-on-write pads).
    pub fn resident_tokens(&self) -> u64 {
        self.tree
            .nodes
            .iter()
            .filter(|n| n.residency == Residency::Gpu)
            .map(|n| n.pad + n.n_tokens)
            .sum()
    }

    /// Logical tokens represented on the GPU (excluding duplicated pads)
    /// — comparing this with [`KvCache::resident_tokens`] quantifies
    /// prefix-sharing savings (Fig. 5, left).
    pub fn logical_resident_tokens(&self) -> u64 {
        self.tree
            .nodes
            .iter()
            .filter(|n| n.residency == Residency::Gpu)
            .map(|n| n.n_tokens)
            .sum()
    }

    /// Unique tokens in the union of the paths ending at `leaves` — the
    /// working set a cache must retain to serve all of them without
    /// recomputation. With prefix sharing this is the (deduplicated)
    /// tree size; without it, the plain sum of path lengths.
    pub fn unique_path_tokens(&self, leaves: &[NodeId]) -> u64 {
        if !self.config.prefix_sharing {
            return leaves.iter().map(|&l| self.seq_tokens(l)).sum();
        }
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        for &leaf in leaves {
            for id in self.tree.logical_path(leaf) {
                if seen.insert(id) {
                    total += self.tree.node(id).n_tokens;
                }
            }
        }
        total
    }

    /// Route victim selection through the seed's brute-force scan
    /// instead of the incremental index. Test/bench oracle only: both
    /// paths must produce identical behaviour.
    #[doc(hidden)]
    pub fn set_scan_eviction(&mut self, scan: bool) {
        self.scan_eviction = scan;
    }

    /// Start recording evicted node ids (in eviction order).
    #[doc(hidden)]
    pub fn enable_eviction_log(&mut self) {
        self.eviction_log = Some(Vec::new());
    }

    /// Drain the eviction log recorded since
    /// [`KvCache::enable_eviction_log`] (or the last drain). Returns an
    /// empty log — and does *not* switch logging on — if logging was
    /// never enabled.
    #[doc(hidden)]
    pub fn take_eviction_log(&mut self) -> Vec<NodeId> {
        self.eviction_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Assert that the incremental eviction index and block accounting
    /// agree exactly with a brute-force scan of the arena. Used by the
    /// property tests after every operation.
    ///
    /// # Panics
    ///
    /// Panics if the index or the unpinned-GPU block sum diverged.
    #[doc(hidden)]
    pub fn audit_eviction_index(&self) {
        let scanned = self.scan_evictable_sorted();
        let indexed: Vec<(u64, NodeId)> = self.evictable.iter().copied().collect();
        assert_eq!(
            indexed, scanned,
            "eviction index out of sync with arena state"
        );
        let scanned_blocks: u64 = self
            .tree
            .nodes
            .iter()
            .filter(|n| n.residency == Residency::Gpu && n.pin_count == 0)
            .map(|n| n.owned_blocks)
            .sum();
        assert_eq!(
            self.unpinned_gpu_blocks, scanned_blocks,
            "unpinned-GPU block counter out of sync"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity_blocks: u64) -> KvCache {
        KvCache::new(KvCacheConfig {
            block_size: 16,
            capacity_bytes: capacity_blocks * 16 * 4,
            bytes_per_token: 4,
            prefix_sharing: true,
        })
    }

    #[test]
    fn pin_allocates_and_reports_recompute() {
        let mut kv = cache(100);
        let r = kv.root(64).unwrap();
        let cost = kv.pin(r).unwrap();
        assert_eq!(cost.recompute_tokens, 64);
        assert_eq!(cost.allocated_blocks, 4);
        assert_eq!(kv.gpu_blocks_used(), 4);
        // Re-pin is a hit.
        let again = kv.pin(r).unwrap();
        assert!(again.is_hit());
        kv.unpin(r);
        kv.unpin(r);
    }

    #[test]
    fn extend_grows_blocks_lazily() {
        let mut kv = cache(100);
        let r = kv.root(16).unwrap();
        kv.pin(r).unwrap();
        assert_eq!(kv.gpu_blocks_used(), 1);
        kv.extend(r, 1).unwrap();
        assert_eq!(kv.gpu_blocks_used(), 2);
        for _ in 0..15 {
            kv.extend(r, 1).unwrap();
        }
        assert_eq!(kv.gpu_blocks_used(), 2);
        kv.extend(r, 1).unwrap();
        assert_eq!(kv.gpu_blocks_used(), 3);
    }

    #[test]
    fn fork_shares_blocks_and_cow_copies_boundary() {
        let mut kv = cache(100);
        let r = kv.root(20).unwrap(); // 2 blocks, second holds 4 tokens
        kv.pin(r).unwrap();
        let c = kv.fork(r).unwrap();
        kv.pin(c).unwrap();
        assert_eq!(kv.gpu_blocks_used(), 2, "fork is lazy");
        kv.extend(c, 1).unwrap();
        // COW: child copies the partial boundary block (pad 4 + 1 token).
        assert_eq!(kv.gpu_blocks_used(), 3);
        assert_eq!(kv.stats().cow_blocks, 1);
    }

    #[test]
    fn aligned_fork_needs_no_cow() {
        let mut kv = cache(100);
        let r = kv.root(32).unwrap();
        kv.pin(r).unwrap();
        let c = kv.fork(r).unwrap();
        kv.pin(c).unwrap();
        kv.extend(c, 1).unwrap();
        assert_eq!(kv.stats().cow_blocks, 0);
        assert_eq!(kv.gpu_blocks_used(), 3);
    }

    #[test]
    fn eviction_prefers_lru_unpinned_leaves() {
        let mut kv = cache(6);
        let r = kv.root(32).unwrap(); // 2 blocks
        kv.pin(r).unwrap();
        let a = kv.fork(r).unwrap();
        let b = kv.fork(r).unwrap();
        kv.pin(a).unwrap();
        kv.extend(a, 32).unwrap(); // 2 blocks
        kv.unpin(a);
        kv.pin(b).unwrap();
        kv.extend(b, 32).unwrap(); // 2 blocks -> pool full (6)
                                   // A third child needs space; `a` (LRU, unpinned leaf) is evicted.
        let c = kv.fork(r).unwrap();
        kv.pin(c).unwrap();
        kv.extend(c, 32).unwrap();
        assert_eq!(kv.residency(a), Residency::Absent);
        assert_eq!(kv.residency(b), Residency::Gpu);
        assert_eq!(kv.residency(r), Residency::Gpu, "shared prefix survives");
        assert!(kv.stats().evicted_blocks >= 2);
        // Re-pinning `a` recomputes its own 32 tokens only.
        kv.unpin(b);
        kv.unpin(c);
        let cost = kv.pin(a).unwrap();
        assert_eq!(cost.recompute_tokens, 32);
    }

    #[test]
    fn pin_fails_cleanly_when_over_capacity() {
        let mut kv = cache(3);
        let r = kv.root(100).unwrap(); // needs 7 blocks > 3
        let err = kv.pin(r).unwrap_err();
        assert!(matches!(err, KvError::InsufficientMemory { .. }));
        assert!(!kv.is_pinned(r), "pins must be rolled back");
        assert_eq!(kv.gpu_blocks_used(), 0, "all-or-nothing per node");
    }

    #[test]
    fn extend_rejects_non_leaf_and_unpinned() {
        let mut kv = cache(100);
        let r = kv.root(8).unwrap();
        kv.pin(r).unwrap();
        let _child = kv.fork(r).unwrap();
        assert_eq!(kv.extend(r, 1), Err(KvError::ExtendNonLeaf(r)));
        let lone = kv.root(8).unwrap();
        assert_eq!(kv.extend(lone, 1), Err(KvError::NotResident(lone)));
    }

    #[test]
    fn swap_out_moves_to_host_and_pin_transfers_back() {
        let mut kv = cache(100);
        let r = kv.root(64).unwrap();
        kv.pin(r).unwrap();
        kv.unpin(r);
        let bytes = kv.swap_out_unpinned();
        assert_eq!(bytes, 4 * 16 * 4);
        assert_eq!(kv.residency(r), Residency::Host);
        assert_eq!(kv.gpu_blocks_used(), 0);
        let cost = kv.pin(r).unwrap();
        assert_eq!(cost.recompute_tokens, 0, "swap-in needs no recompute");
        assert_eq!(cost.transfer_in_bytes, bytes);
    }

    #[test]
    fn capped_swap_out_keeps_prefixes_and_drops_overflow() {
        let mut kv = cache(100);
        let r = kv.root(32).unwrap(); // 2 blocks — the shared prefix
        kv.pin(r).unwrap();
        let a = kv.fork(r).unwrap();
        kv.pin(a).unwrap();
        kv.extend(a, 32).unwrap(); // 2 more blocks
        kv.unpin(a);
        kv.unpin(r);
        // Cap covers exactly the prefix (2 blocks = 128 bytes): the
        // prefix swaps to host, the leaf drops without a host copy.
        let (swapped, dropped) = kv.swap_out_unpinned_capped(2 * 16 * 4);
        assert_eq!(swapped, 2 * 16 * 4);
        assert_eq!(dropped, 2 * 16 * 4);
        assert_eq!(kv.residency(r), Residency::Host, "prefix kept");
        assert_eq!(kv.residency(a), Residency::Absent, "overflow dropped");
        assert_eq!(kv.gpu_blocks_used(), 0);
        assert_eq!(kv.stats().overflow_dropped_blocks, 2);
        // Restoring the prefix transfers; the leaf recomputes.
        let cost = kv.pin(a).unwrap();
        assert_eq!(cost.transfer_in_bytes, 2 * 16 * 4);
        assert_eq!(cost.recompute_tokens, 32);
        kv.audit_eviction_index();
    }

    #[test]
    fn uncapped_swap_out_matches_legacy() {
        let mut a = cache(100);
        let mut b = cache(100);
        for kv in [&mut a, &mut b] {
            let r = kv.root(48).unwrap();
            kv.pin(r).unwrap();
            kv.unpin(r);
        }
        let legacy = a.swap_out_unpinned();
        let (swapped, dropped) = b.swap_out_unpinned_capped(u64::MAX);
        assert_eq!(swapped, legacy);
        assert_eq!(dropped, 0);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn lose_unpinned_drops_data_and_pin_recomputes() {
        let mut kv = cache(100);
        let r = kv.root(64).unwrap();
        kv.pin(r).unwrap();
        kv.unpin(r);
        let lost = kv.lose_unpinned();
        assert_eq!(lost, 4);
        assert_eq!(kv.stats().lost_blocks, 4);
        assert_eq!(kv.residency(r), Residency::Absent, "no host copy");
        assert_eq!(kv.gpu_blocks_used(), 0);
        // Unlike swap-out, recovery is recompute, not PCIe transfer.
        let cost = kv.pin(r).unwrap();
        assert_eq!(cost.recompute_tokens, 64);
        assert_eq!(cost.transfer_in_bytes, 0);
        kv.audit_eviction_index();
    }

    #[test]
    fn lose_unpinned_spares_pinned_and_host_nodes() {
        let mut kv = cache(100);
        let pinned = kv.root(32).unwrap();
        kv.pin(pinned).unwrap();
        let swapped = kv.root(32).unwrap();
        kv.pin(swapped).unwrap();
        kv.unpin(swapped);
        kv.swap_out_unpinned();
        assert_eq!(kv.residency(swapped), Residency::Host);
        let lost = kv.lose_unpinned();
        assert_eq!(lost, 0, "pinned and host-resident nodes survive");
        assert_eq!(kv.residency(pinned), Residency::Gpu);
        assert_eq!(kv.residency(swapped), Residency::Host);
        kv.audit_eviction_index();
    }

    #[test]
    fn no_sharing_mode_duplicates_prefixes() {
        let mut kv = KvCache::new(KvCacheConfig {
            block_size: 16,
            capacity_bytes: 100 * 16 * 4,
            bytes_per_token: 4,
            prefix_sharing: false,
        });
        let r = kv.root(32).unwrap();
        kv.pin(r).unwrap();
        let a = kv.fork(r).unwrap();
        kv.pin(a).unwrap();
        kv.extend(a, 16).unwrap();
        // Child owns the full 48-token copy: 3 blocks + root's 2.
        assert_eq!(kv.gpu_blocks_used(), 5);
        assert!(kv.resident_tokens() > kv.logical_resident_tokens());
    }

    #[test]
    fn would_fit_and_blocks_needed_agree_with_pin() {
        let mut kv = cache(4);
        let r = kv.root(32).unwrap();
        assert_eq!(kv.blocks_needed(r, 0), 2);
        assert!(kv.would_fit(r, 0));
        assert!(kv.would_fit(r, 32));
        assert!(!kv.would_fit(r, 33), "4 blocks cannot hold 65 tokens");
        kv.pin(r).unwrap();
        assert_eq!(kv.blocks_needed(r, 0), 0);
    }

    #[test]
    fn shared_prefix_is_exposed() {
        let mut kv = cache(100);
        let r = kv.root(40).unwrap();
        let a = kv.fork(r).unwrap();
        let b = kv.fork(r).unwrap();
        assert_eq!(kv.shared_prefix(a, b), 40);
    }

    #[test]
    fn unique_path_tokens_dedups_shared_prefixes() {
        let mut kv = cache(100);
        let r = kv.root(40).unwrap();
        let a = kv.fork(r).unwrap();
        let b = kv.fork(r).unwrap();
        kv.pin(a).unwrap();
        kv.pin(b).unwrap();
        kv.extend(a, 10).unwrap();
        kv.extend(b, 20).unwrap();
        assert_eq!(kv.unique_path_tokens(&[a, b]), 70);
        assert_eq!(kv.unique_path_tokens(&[a]), 50);
        assert_eq!(kv.unique_path_tokens(&[]), 0);
    }

    #[test]
    fn unique_path_tokens_without_sharing_sums_paths() {
        let mut kv = KvCache::new(KvCacheConfig {
            block_size: 16,
            capacity_bytes: 100 * 16 * 4,
            bytes_per_token: 4,
            prefix_sharing: false,
        });
        let r = kv.root(40).unwrap();
        let a = kv.fork(r).unwrap();
        let b = kv.fork(r).unwrap();
        assert_eq!(kv.unique_path_tokens(&[a, b]), 80);
    }

    #[test]
    fn capacity_resize_applies_to_pool() {
        let mut kv = cache(10);
        kv.set_capacity_bytes(2 * 16 * 4);
        let r = kv.root(64).unwrap();
        assert!(kv.pin(r).is_err());
    }
}
