//! Host-RAM KV tier behind the device pool.
//!
//! The device KV pool ([`crate::PoolBudget`]) is a single flat budget:
//! preemption swaps KV out to an *implicit, unbounded* host and
//! completed or cancelled requests simply vanish, so nothing survives
//! across requests. This module makes the host side explicit:
//!
//! * a **capacity-bounded byte ledger** — parked (preempted) KV and
//!   published shared prefixes compete for the same configurable
//!   host-RAM budget; what does not fit is genuinely dropped and must
//!   be recomputed,
//! * a **per-owner parking lot** — a preempted request parks its
//!   swapped-out KV under its own id and reclaims it on readmission
//!   (costed swap-in instead of recompute),
//! * a **shared prefix store** — completed and cancelled requests
//!   publish their prompt KV keyed by the problem's stable seed; a
//!   later request for the same prompt admits *warm*, replacing the
//!   prompt prefill with a costed host→device swap-in,
//! * a **pluggable hotness policy** ([`HotnessPolicy`]) deciding which
//!   cold prefix demotes when the tier is full. The default,
//!   [`LruAccessHotness`], combines recency with an access count so
//!   that under Zipf-skewed prompt popularity the head of the
//!   distribution stays resident ("pinned hot") while the long tail
//!   churns.
//!
//! A tier with `host_capacity_bytes == 0` is *disabled*: every park is
//! rejected, every lookup misses, and the serving schedulers take their
//! legacy code paths bit-for-bit (the PR-7 equivalence anchor).
//!
//! The tier is an accounting model, not a data store: it tracks byte
//! placement so the schedulers can cost swap traffic via
//! `Roofline::swap_transfer` and decide recompute-vs-restore, mirroring
//! how the rest of the simulator treats KV.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration for the host-RAM KV tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvTierConfig {
    /// Host-RAM capacity in bytes shared by parked KV and published
    /// prefixes. `0` disables the tier entirely (legacy behaviour).
    pub host_capacity_bytes: u64,
    /// A published prefix with at least this many hits is *hot*: the
    /// hotness policy refuses to demote it while colder entries exist.
    pub pin_hot_after: u64,
}

impl Default for KvTierConfig {
    /// Disabled tier: capacity 0, so every scheduler takes its legacy
    /// path unchanged.
    fn default() -> Self {
        Self {
            host_capacity_bytes: 0,
            pin_hot_after: 2,
        }
    }
}

impl KvTierConfig {
    /// An enabled tier with the given host capacity and the default
    /// hot-pin threshold.
    pub fn with_capacity(host_capacity_bytes: u64) -> Self {
        Self {
            host_capacity_bytes,
            ..Self::default()
        }
    }

    /// Whether the tier participates in scheduling at all.
    pub fn enabled(&self) -> bool {
        self.host_capacity_bytes > 0
    }
}

/// One published shared prefix resident in the host tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixEntry {
    /// Host bytes held by this prefix.
    pub bytes: u64,
    /// Prompt tokens the entry covers (the warm-start length).
    pub tokens: u64,
    /// Times this entry satisfied a warm lookup since publication.
    pub hits: u64,
    /// Logical clock of the last publish or hit (monotone per tier).
    pub last_used: u64,
}

/// Decides which published prefix to demote (drop from the host tier)
/// under capacity pressure. Implementations must be deterministic —
/// scheduler runs are replayed bit-for-bit in tests.
pub trait HotnessPolicy {
    /// Entries reporting hot are exempt from demotion while any
    /// non-hot entry remains.
    fn is_hot(&self, entry: &PrefixEntry) -> bool;

    /// Rank for victim selection among non-hot entries; the *lowest*
    /// rank demotes first. Ties are broken by the tier on the stable
    /// prefix key, so any rank is deterministic.
    fn victim_rank(&self, entry: &PrefixEntry) -> (u64, u64);
}

/// Default hotness policy: LRU refined by access count.
///
/// Victims are the least-hit entries first, oldest-use within a hit
/// count — so under Zipf-skewed prompt popularity the frequently
/// re-requested head keeps host residency while one-off tail prompts
/// recycle. Entries with `hits >= pin_hot_after` are pinned hot.
#[derive(Debug, Clone, Copy)]
pub struct LruAccessHotness {
    /// Hit count at which an entry becomes demotion-exempt.
    pub pin_hot_after: u64,
}

impl HotnessPolicy for LruAccessHotness {
    fn is_hot(&self, entry: &PrefixEntry) -> bool {
        entry.hits >= self.pin_hot_after
    }

    fn victim_rank(&self, entry: &PrefixEntry) -> (u64, u64) {
        (entry.hits, entry.last_used)
    }
}

/// Cumulative host-tier event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierStats {
    /// Warm admissions served from the prefix store.
    pub prefix_hits: u64,
    /// Admissions that found no published prefix (tier enabled only).
    pub prefix_misses: u64,
    /// Prefixes demoted (dropped from host) to make room.
    pub demotions: u64,
    /// Prefixes published into the store.
    pub published: u64,
    /// Bytes accepted into the parking lot at preemption.
    pub parked_bytes: u64,
    /// Bytes that did not fit at preemption and were dropped
    /// (device KV discarded, recompute on readmission).
    pub overflow_dropped_bytes: u64,
    /// Bytes reclaimed from the parking lot (readmission or
    /// cancellation of a parked request).
    pub unparked_bytes: u64,
}

/// The host-RAM KV tier: a bounded ledger of parked per-request KV and
/// published shared prefixes, with hotness-driven demotion.
///
/// # Invariant
///
/// `used_bytes == Σ parked + Σ prefix bytes <= capacity`, checked after
/// every mutation. A zero-capacity tier accepts nothing and hits
/// nothing, so callers gating on [`HostTier::enabled`] reproduce
/// pre-tier behaviour exactly.
pub struct HostTier {
    config: KvTierConfig,
    policy: Box<dyn HotnessPolicy + Send>,
    used: u64,
    /// Logical clock: bumped on publish and hit; drives LRU ordering
    /// without wall-clock nondeterminism.
    seq: u64,
    parked: BTreeMap<u64, u64>,
    prefixes: BTreeMap<u64, PrefixEntry>,
    stats: TierStats,
}

impl std::fmt::Debug for HostTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostTier")
            .field("config", &self.config)
            .field("used", &self.used)
            .field("parked", &self.parked)
            .field("prefixes", &self.prefixes)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl HostTier {
    /// A tier over `config.host_capacity_bytes` of host RAM with the
    /// default [`LruAccessHotness`] policy.
    pub fn new(config: KvTierConfig) -> Self {
        Self {
            policy: Box::new(LruAccessHotness {
                pin_hot_after: config.pin_hot_after,
            }),
            config,
            used: 0,
            seq: 0,
            parked: BTreeMap::new(),
            prefixes: BTreeMap::new(),
            stats: TierStats::default(),
        }
    }

    /// Replace the hotness policy (the tier stays otherwise unchanged).
    pub fn set_policy(&mut self, policy: Box<dyn HotnessPolicy + Send>) {
        self.policy = policy;
    }

    /// Whether the tier participates in scheduling at all.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// Configured host capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.config.host_capacity_bytes
    }

    /// Bytes currently held (parked + prefixes).
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Bytes still free for parking or publication.
    pub fn available_bytes(&self) -> u64 {
        self.config.host_capacity_bytes - self.used
    }

    /// Bytes parked for `owner` (0 if none).
    pub fn parked_bytes_of(&self, owner: u64) -> u64 {
        self.parked.get(&owner).copied().unwrap_or(0)
    }

    /// Event counters so far.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Park `bytes` of preempted KV for `owner`, accepting at most the
    /// free capacity. Returns the bytes accepted; the caller must drop
    /// (not swap) the remainder and will see it again as recompute.
    /// Repeated parks for one owner accumulate.
    pub fn park(&mut self, owner: u64, bytes: u64) -> u64 {
        if !self.enabled() {
            return 0; // legacy path: no counters on a disabled tier
        }
        let accepted = bytes.min(self.available_bytes());
        if accepted > 0 {
            *self.parked.entry(owner).or_insert(0) += accepted;
            self.used += accepted;
        }
        self.stats.parked_bytes += accepted;
        self.stats.overflow_dropped_bytes += bytes - accepted;
        self.audit();
        accepted
    }

    /// Reclaim everything parked for `owner` (readmission swap-in, or
    /// cancellation of a paused request). Returns the bytes freed.
    pub fn unpark(&mut self, owner: u64) -> u64 {
        let freed = self.parked.remove(&owner).unwrap_or(0);
        self.used -= freed;
        self.stats.unparked_bytes += freed;
        self.audit();
        freed
    }

    /// Publish a shared prefix of `tokens` tokens / `bytes` bytes under
    /// the stable `key` (the problem seed). Demotes cold entries under
    /// the hotness policy until the new entry fits; if even demoting
    /// every cold prefix cannot make room (parked KV or hot entries
    /// hold the capacity), the publication is skipped. Re-publishing an
    /// existing key refreshes its recency and size.
    pub fn publish_prefix(&mut self, key: u64, tokens: u64, bytes: u64) {
        if !self.enabled() || bytes == 0 || bytes > self.config.host_capacity_bytes {
            return;
        }
        self.seq += 1;
        if let Some(entry) = self.prefixes.get_mut(&key) {
            // Refresh in place when the size still fits; growth beyond
            // the old footprint competes for free space like a new entry.
            let old = entry.bytes;
            if bytes <= old || bytes - old <= self.config.host_capacity_bytes - self.used {
                self.used = self.used - old + bytes;
                let entry = self.prefixes.get_mut(&key).expect("entry present");
                entry.bytes = bytes;
                entry.tokens = tokens;
                entry.last_used = self.seq;
                self.audit();
            }
            return;
        }
        while self.available_bytes() < bytes {
            let victim = self
                .prefixes
                .iter()
                .filter(|(_, e)| !self.policy.is_hot(e))
                .min_by_key(|(k, e)| (self.policy.victim_rank(e), **k))
                .map(|(k, _)| *k);
            let Some(victim) = victim else {
                return; // nothing cold left to demote — skip publication
            };
            let evicted = self.prefixes.remove(&victim).expect("victim present");
            self.used -= evicted.bytes;
            self.stats.demotions += 1;
        }
        self.prefixes.insert(
            key,
            PrefixEntry {
                bytes,
                tokens,
                hits: 0,
                last_used: self.seq,
            },
        );
        self.used += bytes;
        self.stats.published += 1;
        self.audit();
    }

    /// Warm-start lookup at admission: a hit returns the entry
    /// (tokens/bytes available for swap-in) and bumps its hotness.
    /// Disabled tiers always miss without counting a miss, so counters
    /// stay zero on legacy runs.
    pub fn lookup_prefix(&mut self, key: u64) -> Option<PrefixEntry> {
        if !self.enabled() {
            return None;
        }
        self.seq += 1;
        match self.prefixes.get_mut(&key) {
            Some(entry) => {
                entry.hits += 1;
                entry.last_used = self.seq;
                self.stats.prefix_hits += 1;
                Some(*entry)
            }
            None => {
                self.stats.prefix_misses += 1;
                None
            }
        }
    }

    /// Host-resident prompt-prefix tokens for `key` *without* touching
    /// hotness or hit/miss counters — for admission feasibility checks
    /// (bytes already host-resident must not count against the device
    /// working set) that should not perturb the placement policy.
    pub fn peek_prefix_tokens(&self, key: u64) -> u64 {
        self.prefixes.get(&key).map_or(0, |e| e.tokens)
    }

    /// Number of prefixes currently resident.
    pub fn resident_prefixes(&self) -> usize {
        self.prefixes.len()
    }

    fn audit(&self) {
        debug_assert!(
            self.used <= self.config.host_capacity_bytes,
            "host tier overcommitted: {} > {}",
            self.used,
            self.config.host_capacity_bytes
        );
        debug_assert_eq!(
            self.used,
            self.parked.values().sum::<u64>()
                + self.prefixes.values().map(|e| e.bytes).sum::<u64>(),
            "host tier ledger out of sync"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(cap: u64) -> HostTier {
        HostTier::new(KvTierConfig::with_capacity(cap))
    }

    #[test]
    fn disabled_tier_accepts_and_hits_nothing() {
        let mut t = HostTier::new(KvTierConfig::default());
        assert!(!t.enabled());
        assert_eq!(t.park(1, 100), 0);
        t.publish_prefix(7, 10, 100);
        assert!(t.lookup_prefix(7).is_none());
        assert_eq!(t.stats(), TierStats::default(), "legacy runs stay silent");
    }

    #[test]
    fn park_caps_at_capacity_and_unpark_frees() {
        let mut t = tier(100);
        assert_eq!(t.park(1, 60), 60);
        assert_eq!(t.park(2, 60), 40, "only the free capacity is accepted");
        assert_eq!(t.used_bytes(), 100);
        assert_eq!(t.stats().overflow_dropped_bytes, 20);
        assert_eq!(t.unpark(1), 60);
        assert_eq!(t.unpark(1), 0, "second unpark is a no-op");
        assert_eq!(t.used_bytes(), 40);
        assert_eq!(t.parked_bytes_of(2), 40);
    }

    #[test]
    fn repeated_parks_accumulate_per_owner() {
        let mut t = tier(100);
        assert_eq!(t.park(1, 30), 30);
        assert_eq!(t.park(1, 30), 30);
        assert_eq!(t.parked_bytes_of(1), 60);
        assert_eq!(t.unpark(1), 60);
    }

    #[test]
    fn publish_then_lookup_hits_and_counts() {
        let mut t = tier(1000);
        t.publish_prefix(42, 50, 400);
        assert_eq!(t.resident_prefixes(), 1);
        let e = t.lookup_prefix(42).expect("published prefix hits");
        assert_eq!(e.tokens, 50);
        assert_eq!(e.bytes, 400);
        assert!(t.lookup_prefix(99).is_none());
        let s = t.stats();
        assert_eq!((s.prefix_hits, s.prefix_misses, s.published), (1, 1, 1));
    }

    #[test]
    fn cold_prefixes_demote_before_hot_ones() {
        let mut t = tier(1000);
        t.publish_prefix(1, 10, 400); // will become hot
        t.publish_prefix(2, 10, 400); // stays cold
                                      // Two hits pin key 1 hot (pin_hot_after = 2).
        assert!(t.lookup_prefix(1).is_some());
        assert!(t.lookup_prefix(1).is_some());
        // Needs 400 free: key 2 (cold) must demote, never hot key 1.
        t.publish_prefix(3, 10, 400);
        assert!(t.lookup_prefix(1).is_some(), "hot entry survived");
        assert!(t.lookup_prefix(3).is_some(), "new entry resident");
        assert!(t.lookup_prefix(2).is_none(), "cold entry demoted");
        assert_eq!(t.stats().demotions, 1);
    }

    #[test]
    fn lru_breaks_ties_between_equally_cold_entries() {
        let mut t = tier(800);
        t.publish_prefix(1, 10, 400);
        t.publish_prefix(2, 10, 400);
        // Touch key 1 so key 2 is the older of two zero/one-hit entries.
        assert!(t.lookup_prefix(1).is_some());
        t.publish_prefix(3, 10, 400);
        assert!(t.lookup_prefix(2).is_none(), "least-hit entry demoted");
        assert!(t.lookup_prefix(3).is_some());
    }

    #[test]
    fn publication_skipped_when_everything_is_hot_or_parked() {
        let mut t = tier(500);
        assert_eq!(t.park(9, 400), 400);
        t.publish_prefix(1, 10, 200); // 100 free, nothing to demote
        assert_eq!(t.resident_prefixes(), 0, "no room and no cold victim");
        t.publish_prefix(2, 10, 100);
        assert_eq!(t.resident_prefixes(), 1, "fits in the remaining 100");
        assert_eq!(t.used_bytes(), 500);
    }

    #[test]
    fn republish_refreshes_size_and_conserves_bytes() {
        let mut t = tier(1000);
        t.publish_prefix(1, 10, 400);
        t.publish_prefix(1, 12, 500);
        assert_eq!(t.used_bytes(), 500);
        let e = t.lookup_prefix(1).unwrap();
        assert_eq!((e.tokens, e.bytes), (12, 500));
        assert_eq!(t.stats().published, 1, "refresh is not a new publication");
    }

    #[test]
    fn oversized_publication_is_ignored() {
        let mut t = tier(100);
        t.publish_prefix(1, 10, 200);
        assert_eq!(t.resident_prefixes(), 0);
        assert_eq!(t.used_bytes(), 0);
    }
}
