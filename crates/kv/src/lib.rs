//! Paged KV-cache simulation for FastTTS.
//!
//! vLLM's PagedAttention manages the KV cache as fixed-size token blocks;
//! tree-structured TTS search then shares ancestor blocks between sibling
//! reasoning paths (prefix caching). This crate reproduces those mechanics
//! at block granularity so that *scheduling order has real memory
//! consequences* — the effect FastTTS's Dynamic Prefix-Aware Scheduling
//! exploits (paper Sec. 3.2.2, 4.2, Fig. 5/18):
//!
//! * [`BlockPool`] — a fixed budget of KV blocks with allocation stats.
//! * [`KvCache`] — a prefix tree of token spans. Forking a sequence shares
//!   all full ancestor blocks and copy-on-writes the partial boundary
//!   block, exactly like vLLM. Pinning a leaf makes its whole path
//!   resident, evicting least-recently-used unpinned subtrees when the
//!   pool is exhausted; evicted prefixes must be *recomputed* (re-prefilled)
//!   when next scheduled, and the cache reports those token counts so the
//!   engine can charge roofline time for them. Victim selection runs on
//!   an incrementally maintained `(last_used, NodeId)` index — amortized
//!   `O(log N)` per eviction instead of an `O(N log N)` arena rescan per
//!   allocation miss — with victim order proven identical to the scan
//!   (see the eviction-index notes in the `cache` module).
//! * Host offload (`swap_out_all` / pin-triggered swap-in) models the
//!   paper's extended search space (Sec. 4.3.2): swapped KV needs a PCIe
//!   transfer but no recomputation.
//!
//! # Example
//!
//! ```
//! use ftts_kv::{KvCache, KvCacheConfig};
//!
//! let mut kv = KvCache::new(KvCacheConfig {
//!     block_size: 16,
//!     capacity_bytes: 1 << 20,
//!     bytes_per_token: 64,
//!     prefix_sharing: true,
//! });
//! let prompt = kv.root(100)?;
//! let a = kv.fork(prompt)?;
//! let b = kv.fork(prompt)?;
//! kv.pin(a)?;
//! kv.pin(b)?;
//! kv.extend(a, 40)?;
//! kv.extend(b, 8)?;
//! assert_eq!(kv.shared_prefix(a, b), 100);
//! # Ok::<(), ftts_kv::KvError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod cache;
mod pool;
mod stats;
mod tier;
mod tree;

pub use budget::{tenant_weighted_budgets, PoolBudget, ShareRequest, TenantShareRequest};
pub use cache::{KvCache, KvCacheConfig, KvError, PinCost};
pub use pool::BlockPool;
pub use stats::CacheStats;
pub use tier::{HostTier, HotnessPolicy, KvTierConfig, LruAccessHotness, PrefixEntry, TierStats};
pub use tree::{NodeId, Residency};
