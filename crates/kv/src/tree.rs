//! Prefix tree of token spans.
//!
//! Every reasoning path in a TTS search is a root-to-leaf path in this
//! tree. A node owns the tokens it appended after diverging from its
//! parent; its physical KV blocks are derived from vLLM's paging rules:
//!
//! * With prefix sharing, a fork shares all full ancestor blocks and
//!   copy-on-writes the partial boundary block, so a node physically
//!   stores `pad + n_tokens` tokens where `pad` is the parent boundary
//!   remainder.
//! * Without prefix sharing (the "w/o prefix cache" baseline of Fig. 5),
//!   a fork duplicates the whole ancestor path (`pad` = full prefix
//!   length) and each sequence is self-contained.

use serde::{Deserialize, Serialize};

/// Identifier of a node in the prefix tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kv#{}", self.0)
    }
}

/// Where a node's KV blocks currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Residency {
    /// Blocks are in GPU memory and usable.
    Gpu,
    /// Blocks were swapped to host memory (offloading); restoring costs a
    /// PCIe transfer but no recomputation.
    Host,
    /// Blocks were evicted; the tokens must be recomputed (re-prefilled).
    Absent,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Node {
    pub parent: Option<NodeId>,
    pub depth: u32,
    /// Global token offset of this node's first own token.
    pub start: u64,
    /// Tokens appended by this node.
    pub n_tokens: u64,
    /// Tokens physically duplicated from the prefix into this node's
    /// first blocks (boundary copy-on-write, or the whole prefix when
    /// sharing is disabled).
    pub pad: u64,
    /// Physical blocks currently attributable to this node when resident.
    pub owned_blocks: u64,
    pub residency: Residency,
    pub pin_count: u32,
    /// Children with `residency == Gpu` (eviction must be leaf-first).
    pub gpu_children: u32,
    pub n_children: u32,
    pub last_used: u64,
}

impl Node {
    /// End offset of the node's token span (== path length in tokens).
    pub fn end(&self) -> u64 {
        self.start + self.n_tokens
    }
}

/// Arena of prefix-tree nodes plus the block arithmetic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PrefixTree {
    pub nodes: Vec<Node>,
    pub block_size: u64,
    pub prefix_sharing: bool,
    pub tick: u64,
}

impl PrefixTree {
    pub fn new(block_size: u64, prefix_sharing: bool) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            nodes: Vec::new(),
            block_size,
            prefix_sharing,
            tick: 0,
        }
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    pub fn touch(&mut self, id: NodeId) {
        self.tick += 1;
        let tick = self.tick;
        self.node_mut(id).last_used = tick;
    }

    /// Blocks needed to hold `pad + tokens` physical tokens.
    pub fn blocks_for(&self, pad: u64, tokens: u64) -> u64 {
        if tokens == 0 {
            0
        } else {
            (pad + tokens).div_ceil(self.block_size)
        }
    }

    pub fn add_root(&mut self, tokens: u64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.tick += 1;
        self.nodes.push(Node {
            parent: None,
            depth: 0,
            start: 0,
            n_tokens: tokens,
            pad: 0,
            owned_blocks: 0,
            residency: Residency::Absent,
            pin_count: 0,
            gpu_children: 0,
            n_children: 0,
            last_used: self.tick,
        });
        id
    }

    /// Fork a child that inherits the first `keep_tokens` of `parent`'s
    /// own tokens (plus the entire path above `parent`).
    pub fn fork_at(&mut self, parent: NodeId, keep_tokens: u64) -> NodeId {
        let p = self.node(parent);
        assert!(
            keep_tokens <= p.n_tokens,
            "cannot inherit {keep_tokens} of {} tokens",
            p.n_tokens
        );
        let start = p.start + keep_tokens;
        let depth = p.depth + 1;
        let pad = if self.prefix_sharing {
            start % self.block_size
        } else {
            start
        };
        let id = NodeId(self.nodes.len() as u32);
        self.tick += 1;
        self.nodes.push(Node {
            parent: Some(parent),
            depth,
            start,
            n_tokens: 0,
            pad,
            owned_blocks: 0,
            residency: Residency::Absent,
            pin_count: 0,
            gpu_children: 0,
            n_children: 0,
            last_used: self.tick,
        });
        self.node_mut(parent).n_children += 1;
        id
    }

    /// Nodes whose residency matters for `leaf` to be usable, ordered
    /// root → leaf. With sharing this is the whole ancestor path; without
    /// it the sequence is self-contained.
    pub fn residency_path(&self, leaf: NodeId) -> Vec<NodeId> {
        if !self.prefix_sharing {
            return vec![leaf];
        }
        let mut path = Vec::with_capacity(self.node(leaf).depth as usize + 1);
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            path.push(id);
            cur = self.node(id).parent;
        }
        path.reverse();
        path
    }

    /// Full ancestor path (root → node) regardless of sharing mode.
    pub fn logical_path(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.node(node).depth as usize + 1);
        let mut cur = Some(node);
        while let Some(id) = cur {
            path.push(id);
            cur = self.node(id).parent;
        }
        path.reverse();
        path
    }

    /// Shared prefix length, in tokens, between the sequences ending at
    /// `a` and `b` — the paper's `P(c_i, c_j)` (Sec. 4.2).
    pub fn shared_prefix(&self, a: NodeId, b: NodeId) -> u64 {
        if a == b {
            return self.node(a).end();
        }
        let pa = self.logical_path(a);
        let pb = self.logical_path(b);
        let mut common = 0usize;
        while common < pa.len() && common < pb.len() && pa[common] == pb[common] {
            common += 1;
        }
        if common == 0 {
            return 0;
        }
        // Divergence offsets within/after the last common node.
        let oa = if common < pa.len() {
            self.node(pa[common]).start
        } else {
            self.node(a).end()
        };
        let ob = if common < pb.len() {
            self.node(pb[common]).start
        } else {
            self.node(b).end()
        };
        oa.min(ob)
    }

    /// Total sequence length in tokens for the path ending at `node`.
    pub fn seq_tokens(&self, node: NodeId) -> u64 {
        self.node(node).end()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> PrefixTree {
        PrefixTree::new(16, true)
    }

    #[test]
    fn root_starts_at_zero() {
        let mut t = tree();
        let r = t.add_root(100);
        assert_eq!(t.node(r).start, 0);
        assert_eq!(t.seq_tokens(r), 100);
        assert_eq!(t.node(r).depth, 0);
    }

    #[test]
    fn fork_inherits_offset_and_pad() {
        let mut t = tree();
        let r = t.add_root(100);
        let c = t.fork_at(r, 100);
        assert_eq!(t.node(c).start, 100);
        assert_eq!(t.node(c).pad, 100 % 16);
        assert_eq!(t.node(c).depth, 1);
        assert_eq!(t.node(r).n_children, 1);
    }

    #[test]
    fn fork_without_sharing_copies_whole_prefix() {
        let mut t = PrefixTree::new(16, false);
        let r = t.add_root(100);
        let c = t.fork_at(r, 100);
        assert_eq!(t.node(c).pad, 100);
        assert_eq!(t.residency_path(c), vec![c]);
    }

    #[test]
    fn blocks_for_rounds_up_with_pad() {
        let t = tree();
        assert_eq!(t.blocks_for(0, 0), 0);
        assert_eq!(t.blocks_for(0, 16), 1);
        assert_eq!(t.blocks_for(0, 17), 2);
        assert_eq!(t.blocks_for(4, 13), 2);
        assert_eq!(t.blocks_for(4, 0), 0, "no tokens means no copy yet");
    }

    #[test]
    fn shared_prefix_of_siblings_is_parent_end() {
        let mut t = tree();
        let r = t.add_root(100);
        let a = t.fork_at(r, 100);
        let b = t.fork_at(r, 100);
        t.node_mut(a).n_tokens = 40;
        t.node_mut(b).n_tokens = 8;
        assert_eq!(t.shared_prefix(a, b), 100);
        assert_eq!(t.shared_prefix(a, a), 140);
    }

    #[test]
    fn shared_prefix_with_mid_node_fork() {
        let mut t = tree();
        let r = t.add_root(100);
        let c0 = t.fork_at(r, 100);
        t.node_mut(c0).n_tokens = 50;
        // Duplicate inherits only 20 of c0's 50 tokens (truncated spec).
        let dup = t.fork_at(c0, 20);
        t.node_mut(dup).n_tokens = 30;
        let cont = t.fork_at(c0, 50);
        t.node_mut(cont).n_tokens = 10;
        assert_eq!(t.shared_prefix(dup, cont), 120);
        assert_eq!(t.shared_prefix(dup, c0), 120);
        assert_eq!(t.shared_prefix(cont, c0), 150);
    }

    #[test]
    fn shared_prefix_of_unrelated_roots_is_zero() {
        let mut t = tree();
        let r1 = t.add_root(10);
        let r2 = t.add_root(10);
        assert_eq!(t.shared_prefix(r1, r2), 0);
    }

    #[test]
    fn ancestor_descendant_share_ancestor_portion() {
        let mut t = tree();
        let r = t.add_root(100);
        let a = t.fork_at(r, 100);
        t.node_mut(a).n_tokens = 10;
        assert_eq!(t.shared_prefix(r, a), 100);
    }

    #[test]
    #[should_panic(expected = "cannot inherit")]
    fn fork_beyond_parent_tokens_panics() {
        let mut t = tree();
        let r = t.add_root(10);
        t.fork_at(r, 11);
    }

    #[test]
    fn touch_advances_lru_clock() {
        let mut t = tree();
        let r = t.add_root(10);
        let before = t.node(r).last_used;
        t.touch(r);
        assert!(t.node(r).last_used > before);
    }
}
