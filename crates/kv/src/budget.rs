//! Shared device-KV budget split between concurrent requests.
//!
//! Under continuous batching many requests hold KV caches on one
//! accelerator at the same time. Admission control must guarantee the
//! sum of their capacities never exceeds the device budget — otherwise
//! the simulation would hand out memory that does not exist. This
//! ledger tracks per-holder byte reservations against a fixed total;
//! the serving scheduler reserves a share at admission, resizes shares
//! as the batch grows and shrinks, and releases them at completion or
//! preemption.

use std::collections::BTreeMap;

/// One holder's input to a demand-proportional rebalance: how many
/// bytes it *wants* (its working-set estimate) and the floor below
/// which shrinking its share would strand accepted tokens (evicting
/// retained prefixes into recompute thrash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareRequest {
    /// The holder being re-shared (must hold a live reservation).
    pub holder: u64,
    /// Working-set demand in bytes (0 = idle; gets the base floor only).
    pub demand: u64,
    /// Bytes needed to keep already-accepted tokens resident.
    pub floor: u64,
}

/// A byte-reservation ledger over a fixed device KV budget.
///
/// # Invariant
///
/// The sum of all reservations never exceeds the total: every mutation
/// that would break this fails (returning `false`) without changing any
/// state. `peak_reserved_bytes` records the lifetime high-water mark,
/// so tests can audit that a whole scheduling run stayed within budget.
///
/// # Example
///
/// ```
/// use ftts_kv::PoolBudget;
/// let mut pool = PoolBudget::new(100);
/// assert!(pool.reserve(1, 60));
/// assert!(!pool.reserve(2, 60)); // would overcommit
/// assert!(pool.resize(1, 50));
/// assert!(pool.reserve(2, 50));
/// assert_eq!(pool.release(1), 50);
/// assert_eq!(pool.reserved_bytes(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBudget {
    total_bytes: u64,
    reserved: BTreeMap<u64, u64>,
    reserved_bytes: u64,
    peak_reserved: u64,
}

impl PoolBudget {
    /// A ledger over `total_bytes` of device KV memory.
    pub fn new(total_bytes: u64) -> Self {
        Self {
            total_bytes,
            reserved: BTreeMap::new(),
            reserved_bytes: 0,
            peak_reserved: 0,
        }
    }

    /// The fixed device budget.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes currently reserved across all holders.
    pub fn reserved_bytes(&self) -> u64 {
        debug_assert_eq!(
            self.reserved_bytes,
            self.reserved.values().sum::<u64>(),
            "reservation ledger out of sync"
        );
        self.reserved_bytes
    }

    /// Bytes still available for new reservations.
    pub fn available_bytes(&self) -> u64 {
        self.total_bytes - self.reserved_bytes
    }

    /// Lifetime maximum of [`PoolBudget::reserved_bytes`] — never above
    /// the total, by construction.
    pub fn peak_reserved_bytes(&self) -> u64 {
        self.peak_reserved
    }

    /// Number of holders with a live reservation.
    pub fn holders(&self) -> usize {
        self.reserved.len()
    }

    /// A holder's current reservation (0 if none).
    pub fn share_of(&self, holder: u64) -> u64 {
        self.reserved.get(&holder).copied().unwrap_or(0)
    }

    /// The equal share `k` concurrent holders would each get. Integer
    /// division truncates: up to `k - 1` bytes are *not* covered by
    /// `k` such shares — callers resizing every holder to this value
    /// must hand [`PoolBudget::equal_share_remainder`] to one of them
    /// (mirroring the `proportional_shares` leftover rule) or they
    /// strand those bytes on every rebalance.
    pub fn equal_share(&self, k: usize) -> u64 {
        self.total_bytes / k.max(1) as u64
    }

    /// The bytes `k` equal shares leave uncovered
    /// (`total - k * equal_share(k)`, always `< k`). Deterministically
    /// assigning this remainder to one holder makes an equal-share
    /// rebalance conserve the full budget, exactly as
    /// [`PoolBudget::proportional_shares`] does with its leftover.
    pub fn equal_share_remainder(&self, k: usize) -> u64 {
        self.total_bytes - self.equal_share(k) * k.max(1) as u64
    }

    /// Reserve `bytes` for a new holder. Fails (changing nothing) if the
    /// holder already has a reservation or the budget cannot cover it.
    #[must_use]
    pub fn reserve(&mut self, holder: u64, bytes: u64) -> bool {
        if self.reserved.contains_key(&holder) || bytes > self.available_bytes() {
            return false;
        }
        self.reserved.insert(holder, bytes);
        self.reserved_bytes += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }

    /// Resize an existing reservation. Shrinking always succeeds;
    /// growing succeeds only if the extra bytes are available. Fails for
    /// unknown holders.
    #[must_use]
    pub fn resize(&mut self, holder: u64, bytes: u64) -> bool {
        let Some(current) = self.reserved.get(&holder).copied() else {
            return false;
        };
        if bytes > current && bytes - current > self.available_bytes() {
            return false;
        }
        self.reserved.insert(holder, bytes);
        self.reserved_bytes = self.reserved_bytes - current + bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }

    /// Release a holder's reservation entirely, returning the bytes
    /// freed (0 for unknown holders).
    pub fn release(&mut self, holder: u64) -> u64 {
        let freed = self.reserved.remove(&holder).unwrap_or(0);
        self.reserved_bytes -= freed;
        freed
    }

    /// Plan demand-proportional elastic shares over the whole budget.
    ///
    /// Every holder is guaranteed an *effective floor* of
    /// `min(max(request.floor, total/(2k)), total/k)` — its declared
    /// floor, raised to a base share of half the equal split so nobody
    /// starves, and capped at the equal split so the floors always fit.
    /// The remaining bytes are split proportionally to declared demand
    /// (equally when every demand is 0), with the integer remainder
    /// handed to the highest-demand holder so the full budget is
    /// distributed: the returned shares sum to exactly `total_bytes`.
    ///
    /// Pure planning — the ledger is untouched; apply with
    /// [`PoolBudget::rebalance`].
    pub fn proportional_shares(&self, requests: &[ShareRequest]) -> Vec<(u64, u64)> {
        let k = requests.len() as u64;
        if k == 0 {
            return Vec::new();
        }
        let cap = self.total_bytes / k;
        let base = self.total_bytes / (2 * k);
        let floors: Vec<u64> = requests
            .iter()
            .map(|r| r.floor.max(base).min(cap))
            .collect();
        let floored: u64 = floors.iter().sum();
        let remaining = self.total_bytes - floored; // floors ≤ k·cap ≤ total
        let weight_sum: u128 = requests.iter().map(|r| r.demand as u128).sum();
        let mut shares: Vec<(u64, u64)> = requests
            .iter()
            .zip(&floors)
            .map(|(r, &floor)| {
                let weighted = (remaining as u128 * r.demand as u128)
                    .checked_div(weight_sum)
                    .map_or_else(|| remaining / k, |w| w as u64);
                (r.holder, floor + weighted)
            })
            .collect();
        // Hand the rounding remainder to the hungriest holder: the full
        // budget is always distributed, so reclaiming idle reservation
        // conserves bytes instead of leaking them.
        let distributed: u64 = shares.iter().map(|&(_, s)| s).sum();
        let leftover = self.total_bytes - distributed;
        if leftover > 0 {
            let (pos, _) = requests
                .iter()
                .enumerate()
                .max_by_key(|(i, r)| (r.demand, std::cmp::Reverse(*i)))
                .expect("non-empty requests");
            shares[pos].1 += leftover;
        }
        shares
    }

    /// Atomically re-share the whole budget among the current holders by
    /// demand ([`PoolBudget::proportional_shares`]). Fails (changing
    /// nothing) unless `requests` names exactly the live holders. On
    /// success the ledger is fully subscribed (`reserved_bytes ==
    /// total_bytes`), every share respects its effective floor, and no
    /// overcommit is possible by construction.
    #[must_use]
    pub fn rebalance(&mut self, requests: &[ShareRequest]) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        if requests.len() != self.reserved.len()
            || requests
                .iter()
                .any(|r| !self.reserved.contains_key(&r.holder) || !seen.insert(r.holder))
        {
            return false;
        }
        // Distinct holders, all present, same count ⇒ exact cover.
        let shares = self.proportional_shares(requests);
        for &(holder, share) in &shares {
            self.reserved.insert(holder, share);
        }
        self.reserved_bytes = self.reserved.values().sum();
        debug_assert_eq!(self.reserved_bytes, self.total_bytes);
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_resize_release_roundtrip() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(7, 40));
        assert!(p.reserve(8, 60));
        assert_eq!(p.available_bytes(), 0);
        assert_eq!(p.holders(), 2);
        assert!(p.resize(7, 20));
        assert_eq!(p.available_bytes(), 20);
        assert!(p.resize(8, 80));
        assert_eq!(p.release(7), 20);
        assert_eq!(p.release(8), 80);
        assert_eq!(p.reserved_bytes(), 0);
        assert_eq!(p.peak_reserved_bytes(), 100);
    }

    #[test]
    fn overcommit_is_rejected_without_side_effects() {
        let mut p = PoolBudget::new(50);
        assert!(p.reserve(1, 30));
        assert!(!p.reserve(2, 30));
        assert_eq!(p.holders(), 1);
        assert!(!p.resize(1, 60));
        assert_eq!(p.share_of(1), 30);
        assert_eq!(p.peak_reserved_bytes(), 30);
    }

    #[test]
    fn duplicate_and_unknown_holders_fail() {
        let mut p = PoolBudget::new(50);
        assert!(p.reserve(1, 10));
        assert!(!p.reserve(1, 10), "double reservation must fail");
        assert!(!p.resize(2, 10), "unknown holder cannot resize");
        assert_eq!(p.release(2), 0, "unknown holder releases nothing");
        assert_eq!(p.share_of(2), 0);
    }

    #[test]
    fn equal_share_divides_the_budget() {
        let p = PoolBudget::new(99);
        assert_eq!(p.equal_share(1), 99);
        assert_eq!(p.equal_share(3), 33);
        assert_eq!(p.equal_share(0), 99, "zero holders degrades to full");
    }

    #[test]
    fn equal_share_remainder_covers_the_truncation() {
        for total in [0u64, 1, 99, 100, 1 << 30] {
            let p = PoolBudget::new(total);
            for k in 0usize..=7 {
                let share = p.equal_share(k);
                let rem = p.equal_share_remainder(k);
                assert_eq!(share * k.max(1) as u64 + rem, total);
                assert!(rem < k.max(1) as u64);
            }
        }
    }

    fn req(holder: u64, demand: u64, floor: u64) -> ShareRequest {
        ShareRequest {
            holder,
            demand,
            floor,
        }
    }

    #[test]
    fn proportional_shares_follow_demand_and_conserve_bytes() {
        let p = PoolBudget::new(1200);
        let shares = p.proportional_shares(&[req(1, 900, 0), req(2, 300, 0), req(3, 0, 0)]);
        let total: u64 = shares.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 1200, "full budget distributed");
        let of = |h: u64| shares.iter().find(|&&(x, _)| x == h).unwrap().1;
        // Base floor is total/(2k) = 200; the idle holder gets exactly it.
        assert_eq!(of(3), 200);
        assert!(of(1) > of(2), "deeper demand earns the bigger share");
        assert!(of(2) > of(3));
    }

    #[test]
    fn proportional_floors_are_respected_and_capped() {
        let p = PoolBudget::new(900);
        // Declared floor above the equal split is capped to it (300).
        let shares = p.proportional_shares(&[req(1, 0, 800), req(2, 0, 0), req(3, 0, 0)]);
        let of = |h: u64| shares.iter().find(|&&(x, _)| x == h).unwrap().1;
        assert!(of(1) >= 300, "floor capped at the equal split");
        assert!(of(2) >= 150 && of(3) >= 150, "base floor total/(2k)");
        assert_eq!(shares.iter().map(|&(_, s)| s).sum::<u64>(), 900);
        assert!(p.proportional_shares(&[]).is_empty());
    }

    #[test]
    fn rebalance_is_atomic_and_validates_holders() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(1, 50));
        assert!(p.reserve(2, 50));
        // Unknown holder, missing holder, duplicate holder: all rejected.
        assert!(!p.rebalance(&[req(1, 1, 0), req(3, 1, 0)]));
        assert!(!p.rebalance(&[req(1, 1, 0)]));
        assert!(!p.rebalance(&[req(1, 1, 0), req(1, 1, 0)]));
        assert_eq!(p.share_of(1), 50);
        assert_eq!(p.share_of(2), 50);
        // A valid rebalance re-shares the full budget by demand.
        assert!(p.rebalance(&[req(1, 300, 0), req(2, 100, 0)]));
        assert_eq!(p.reserved_bytes(), 100);
        assert!(p.share_of(1) > p.share_of(2));
        assert!(p.share_of(2) >= 25, "base floor total/(2k)");
        assert!(p.peak_reserved_bytes() <= p.total_bytes());
    }

    #[test]
    fn rebalance_reclaims_idle_reservation() {
        let mut p = PoolBudget::new(1000);
        assert!(p.reserve(1, 500));
        assert!(p.reserve(2, 500));
        // Holder 1 went idle (tiny demand); its excess flows to holder 2
        // without any release/re-reserve churn.
        assert!(p.rebalance(&[req(1, 10, 100), req(2, 2000, 100)]));
        assert!(p.share_of(2) > 500);
        assert!(p.share_of(1) >= 100, "floor keeps accepted tokens resident");
        assert_eq!(
            p.share_of(1) + p.share_of(2),
            1000,
            "reclaim conserves bytes"
        );
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(1, 70));
        p.release(1);
        assert!(p.reserve(2, 10));
        assert_eq!(p.peak_reserved_bytes(), 70);
        assert_eq!(p.reserved_bytes(), 10);
    }
}
