//! Shared device-KV budget split between concurrent requests.
//!
//! Under continuous batching many requests hold KV caches on one
//! accelerator at the same time. Admission control must guarantee the
//! sum of their capacities never exceeds the device budget — otherwise
//! the simulation would hand out memory that does not exist. This
//! ledger tracks per-holder byte reservations against a fixed total;
//! the serving scheduler reserves a share at admission, resizes shares
//! as the batch grows and shrinks, and releases them at completion or
//! preemption.

use std::collections::BTreeMap;

/// A byte-reservation ledger over a fixed device KV budget.
///
/// # Invariant
///
/// The sum of all reservations never exceeds the total: every mutation
/// that would break this fails (returning `false`) without changing any
/// state. `peak_reserved_bytes` records the lifetime high-water mark,
/// so tests can audit that a whole scheduling run stayed within budget.
///
/// # Example
///
/// ```
/// use ftts_kv::PoolBudget;
/// let mut pool = PoolBudget::new(100);
/// assert!(pool.reserve(1, 60));
/// assert!(!pool.reserve(2, 60)); // would overcommit
/// assert!(pool.resize(1, 50));
/// assert!(pool.reserve(2, 50));
/// assert_eq!(pool.release(1), 50);
/// assert_eq!(pool.reserved_bytes(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBudget {
    total_bytes: u64,
    reserved: BTreeMap<u64, u64>,
    reserved_bytes: u64,
    peak_reserved: u64,
}

impl PoolBudget {
    /// A ledger over `total_bytes` of device KV memory.
    pub fn new(total_bytes: u64) -> Self {
        Self {
            total_bytes,
            reserved: BTreeMap::new(),
            reserved_bytes: 0,
            peak_reserved: 0,
        }
    }

    /// The fixed device budget.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes currently reserved across all holders.
    pub fn reserved_bytes(&self) -> u64 {
        debug_assert_eq!(
            self.reserved_bytes,
            self.reserved.values().sum::<u64>(),
            "reservation ledger out of sync"
        );
        self.reserved_bytes
    }

    /// Bytes still available for new reservations.
    pub fn available_bytes(&self) -> u64 {
        self.total_bytes - self.reserved_bytes
    }

    /// Lifetime maximum of [`PoolBudget::reserved_bytes`] — never above
    /// the total, by construction.
    pub fn peak_reserved_bytes(&self) -> u64 {
        self.peak_reserved
    }

    /// Number of holders with a live reservation.
    pub fn holders(&self) -> usize {
        self.reserved.len()
    }

    /// A holder's current reservation (0 if none).
    pub fn share_of(&self, holder: u64) -> u64 {
        self.reserved.get(&holder).copied().unwrap_or(0)
    }

    /// The equal share `k` concurrent holders would each get.
    pub fn equal_share(&self, k: usize) -> u64 {
        self.total_bytes / k.max(1) as u64
    }

    /// Reserve `bytes` for a new holder. Fails (changing nothing) if the
    /// holder already has a reservation or the budget cannot cover it.
    #[must_use]
    pub fn reserve(&mut self, holder: u64, bytes: u64) -> bool {
        if self.reserved.contains_key(&holder) || bytes > self.available_bytes() {
            return false;
        }
        self.reserved.insert(holder, bytes);
        self.reserved_bytes += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }

    /// Resize an existing reservation. Shrinking always succeeds;
    /// growing succeeds only if the extra bytes are available. Fails for
    /// unknown holders.
    #[must_use]
    pub fn resize(&mut self, holder: u64, bytes: u64) -> bool {
        let Some(current) = self.reserved.get(&holder).copied() else {
            return false;
        };
        if bytes > current && bytes - current > self.available_bytes() {
            return false;
        }
        self.reserved.insert(holder, bytes);
        self.reserved_bytes = self.reserved_bytes - current + bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }

    /// Release a holder's reservation entirely, returning the bytes
    /// freed (0 for unknown holders).
    pub fn release(&mut self, holder: u64) -> u64 {
        let freed = self.reserved.remove(&holder).unwrap_or(0);
        self.reserved_bytes -= freed;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_resize_release_roundtrip() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(7, 40));
        assert!(p.reserve(8, 60));
        assert_eq!(p.available_bytes(), 0);
        assert_eq!(p.holders(), 2);
        assert!(p.resize(7, 20));
        assert_eq!(p.available_bytes(), 20);
        assert!(p.resize(8, 80));
        assert_eq!(p.release(7), 20);
        assert_eq!(p.release(8), 80);
        assert_eq!(p.reserved_bytes(), 0);
        assert_eq!(p.peak_reserved_bytes(), 100);
    }

    #[test]
    fn overcommit_is_rejected_without_side_effects() {
        let mut p = PoolBudget::new(50);
        assert!(p.reserve(1, 30));
        assert!(!p.reserve(2, 30));
        assert_eq!(p.holders(), 1);
        assert!(!p.resize(1, 60));
        assert_eq!(p.share_of(1), 30);
        assert_eq!(p.peak_reserved_bytes(), 30);
    }

    #[test]
    fn duplicate_and_unknown_holders_fail() {
        let mut p = PoolBudget::new(50);
        assert!(p.reserve(1, 10));
        assert!(!p.reserve(1, 10), "double reservation must fail");
        assert!(!p.resize(2, 10), "unknown holder cannot resize");
        assert_eq!(p.release(2), 0, "unknown holder releases nothing");
        assert_eq!(p.share_of(2), 0);
    }

    #[test]
    fn equal_share_divides_the_budget() {
        let p = PoolBudget::new(99);
        assert_eq!(p.equal_share(1), 99);
        assert_eq!(p.equal_share(3), 33);
        assert_eq!(p.equal_share(0), 99, "zero holders degrades to full");
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(1, 70));
        p.release(1);
        assert!(p.reserve(2, 10));
        assert_eq!(p.peak_reserved_bytes(), 70);
        assert_eq!(p.reserved_bytes(), 10);
    }
}
