//! Shared device-KV budget split between concurrent requests.
//!
//! Under continuous batching many requests hold KV caches on one
//! accelerator at the same time. Admission control must guarantee the
//! sum of their capacities never exceeds the device budget — otherwise
//! the simulation would hand out memory that does not exist. This
//! ledger tracks per-holder byte reservations against a fixed total;
//! the serving scheduler reserves a share at admission, resizes shares
//! as the batch grows and shrinks, and releases them at completion or
//! preemption.

use std::collections::BTreeMap;

/// One holder's input to a demand-proportional rebalance: how many
/// bytes it *wants* (its working-set estimate) and the floor below
/// which shrinking its share would strand accepted tokens (evicting
/// retained prefixes into recompute thrash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareRequest {
    /// The holder being re-shared (must hold a live reservation).
    pub holder: u64,
    /// Working-set demand in bytes (0 = idle; gets the base floor only).
    pub demand: u64,
    /// Bytes needed to keep already-accepted tokens resident.
    pub floor: u64,
}

/// One holder's input to a two-level tenant rebalance
/// ([`PoolBudget::rebalance_tenants`]): the per-holder
/// [`ShareRequest`] plus the tenant it bills to and the tenant's
/// fair-share weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantShareRequest {
    /// The per-holder demand/floor request.
    pub req: ShareRequest,
    /// Tenant this holder's reservation bills to.
    pub tenant: u64,
    /// The tenant's fair-share weight (≥ 1; every holder of one tenant
    /// must declare the same weight).
    pub weight: u32,
}

/// Split `total` bytes across tenants by weighted fair-share with
/// per-tenant byte limits (water-filling).
///
/// Input is one `(tenant, weight, limit, need)` row per tenant:
/// `weight` is the fair-share weight (≥ 1), `limit` the hard byte cap,
/// and `need` how many bytes the tenant can actually use (its demand /
/// floor bound — a work-conservation hint, so bytes a tenant cannot use
/// flow to hungrier tenants instead of stranding). Each tenant's budget
/// is bounded by `min(limit, need)`; the remaining pool is repeatedly
/// split across unbounded tenants proportionally to weight until every
/// tenant is either satisfied or the pool is spent. The integer
/// remainder goes to the heaviest unbounded tenant (lowest id on ties).
///
/// Guarantees, relied on by the `ftts-serve` tenant proptests:
/// Σ budgets ≤ `total`; every budget ≤ its `limit`; a tenant with
/// positive weight, limit and need never gets 0 while bytes remain
/// (starvation-freedom); and raising one tenant's weight (all else
/// equal) never shrinks its budget (monotonicity).
pub fn tenant_weighted_budgets(total: u64, tenants: &[(u64, u32, u64, u64)]) -> Vec<(u64, u64)> {
    let mut budgets: Vec<(u64, u64)> = tenants.iter().map(|&(id, ..)| (id, 0)).collect();
    let bound = |i: usize| -> u64 {
        let (_, _, limit, need) = tenants[i];
        limit.min(need)
    };
    let mut open: Vec<usize> = (0..tenants.len())
        .filter(|&i| tenants[i].1 > 0 && bound(i) > 0)
        .collect();
    let mut remaining = total;
    // Water-filling: every pass either saturates at least one tenant at
    // its bound (and removes it) or distributes the remainder and
    // stops, so the loop runs at most `tenants.len()` times.
    while remaining > 0 && !open.is_empty() {
        let weight_sum: u128 = open.iter().map(|&i| u128::from(tenants[i].1)).sum();
        let mut saturated = false;
        let mut pass = remaining;
        open.retain(|&i| {
            let ideal = (u128::from(pass) * u128::from(tenants[i].1) / weight_sum) as u64;
            let headroom = bound(i) - budgets[i].1;
            if ideal >= headroom {
                budgets[i].1 += headroom;
                remaining -= headroom;
                saturated = true;
                false
            } else {
                true
            }
        });
        if saturated {
            continue;
        }
        // Nobody saturates: hand out the weighted split and stop. The
        // integer remainder goes to the heaviest open tenant (lowest
        // id on ties) so the pass conserves every byte it can place.
        pass = remaining;
        let weight_sum: u128 = open.iter().map(|&i| u128::from(tenants[i].1)).sum();
        for &i in &open {
            let ideal = (u128::from(pass) * u128::from(tenants[i].1) / weight_sum) as u64;
            budgets[i].1 += ideal;
            remaining -= ideal;
        }
        if remaining > 0 {
            let &top = open
                .iter()
                .max_by_key(|&&i| (tenants[i].1, std::cmp::Reverse(tenants[i].0)))
                .expect("open tenants remain");
            let extra = remaining.min(bound(top) - budgets[top].1);
            budgets[top].1 += extra;
        }
        break;
    }
    budgets
}

/// A byte-reservation ledger over a fixed device KV budget.
///
/// # Invariant
///
/// The sum of all reservations never exceeds the total: every mutation
/// that would break this fails (returning `false`) without changing any
/// state. `peak_reserved_bytes` records the lifetime high-water mark,
/// so tests can audit that a whole scheduling run stayed within budget.
///
/// # Example
///
/// ```
/// use ftts_kv::PoolBudget;
/// let mut pool = PoolBudget::new(100);
/// assert!(pool.reserve(1, 60));
/// assert!(!pool.reserve(2, 60)); // would overcommit
/// assert!(pool.resize(1, 50));
/// assert!(pool.reserve(2, 50));
/// assert_eq!(pool.release(1), 50);
/// assert_eq!(pool.reserved_bytes(), 50);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBudget {
    total_bytes: u64,
    reserved: BTreeMap<u64, u64>,
    reserved_bytes: u64,
    peak_reserved: u64,
    /// Hard per-tenant byte caps ([`PoolBudget::set_tenant_cap`]),
    /// enforced by [`PoolBudget::rebalance_tenants`].
    tenant_caps: BTreeMap<u64, u64>,
    /// Per-tenant bytes granted by the last tenant rebalance.
    tenant_reserved: BTreeMap<u64, u64>,
    /// Lifetime high-water mark of each tenant's granted bytes.
    tenant_peak: BTreeMap<u64, u64>,
}

impl PoolBudget {
    /// A ledger over `total_bytes` of device KV memory.
    pub fn new(total_bytes: u64) -> Self {
        Self {
            total_bytes,
            reserved: BTreeMap::new(),
            reserved_bytes: 0,
            peak_reserved: 0,
            tenant_caps: BTreeMap::new(),
            tenant_reserved: BTreeMap::new(),
            tenant_peak: BTreeMap::new(),
        }
    }

    /// The fixed device budget.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes currently reserved across all holders.
    pub fn reserved_bytes(&self) -> u64 {
        debug_assert_eq!(
            self.reserved_bytes,
            self.reserved.values().sum::<u64>(),
            "reservation ledger out of sync"
        );
        self.reserved_bytes
    }

    /// Bytes still available for new reservations.
    pub fn available_bytes(&self) -> u64 {
        self.total_bytes - self.reserved_bytes
    }

    /// Lifetime maximum of [`PoolBudget::reserved_bytes`] — never above
    /// the total, by construction.
    pub fn peak_reserved_bytes(&self) -> u64 {
        self.peak_reserved
    }

    /// Number of holders with a live reservation.
    pub fn holders(&self) -> usize {
        self.reserved.len()
    }

    /// A holder's current reservation (0 if none).
    pub fn share_of(&self, holder: u64) -> u64 {
        self.reserved.get(&holder).copied().unwrap_or(0)
    }

    /// The equal share `k` concurrent holders would each get. Integer
    /// division truncates: up to `k - 1` bytes are *not* covered by
    /// `k` such shares — callers resizing every holder to this value
    /// must hand [`PoolBudget::equal_share_remainder`] to one of them
    /// (mirroring the `proportional_shares` leftover rule) or they
    /// strand those bytes on every rebalance.
    pub fn equal_share(&self, k: usize) -> u64 {
        self.total_bytes / k.max(1) as u64
    }

    /// The bytes `k` equal shares leave uncovered
    /// (`total - k * equal_share(k)`, always `< k`). Deterministically
    /// assigning this remainder to one holder makes an equal-share
    /// rebalance conserve the full budget, exactly as
    /// [`PoolBudget::proportional_shares`] does with its leftover.
    pub fn equal_share_remainder(&self, k: usize) -> u64 {
        self.total_bytes - self.equal_share(k) * k.max(1) as u64
    }

    /// Reserve `bytes` for a new holder. Fails (changing nothing) if the
    /// holder already has a reservation or the budget cannot cover it.
    #[must_use]
    pub fn reserve(&mut self, holder: u64, bytes: u64) -> bool {
        if self.reserved.contains_key(&holder) || bytes > self.available_bytes() {
            return false;
        }
        self.reserved.insert(holder, bytes);
        self.reserved_bytes += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }

    /// Resize an existing reservation. Shrinking always succeeds;
    /// growing succeeds only if the extra bytes are available. Fails for
    /// unknown holders.
    #[must_use]
    pub fn resize(&mut self, holder: u64, bytes: u64) -> bool {
        let Some(current) = self.reserved.get(&holder).copied() else {
            return false;
        };
        if bytes > current && bytes - current > self.available_bytes() {
            return false;
        }
        self.reserved.insert(holder, bytes);
        self.reserved_bytes = self.reserved_bytes - current + bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }

    /// Release a holder's reservation entirely, returning the bytes
    /// freed (0 for unknown holders).
    pub fn release(&mut self, holder: u64) -> u64 {
        let freed = self.reserved.remove(&holder).unwrap_or(0);
        self.reserved_bytes -= freed;
        freed
    }

    /// Plan demand-proportional elastic shares over the whole budget.
    ///
    /// Every holder is guaranteed an *effective floor* of
    /// `min(max(request.floor, total/(2k)), total/k)` — its declared
    /// floor, raised to a base share of half the equal split so nobody
    /// starves, and capped at the equal split so the floors always fit.
    /// The remaining bytes are split proportionally to declared demand
    /// (equally when every demand is 0), with the integer remainder
    /// handed to the highest-demand holder so the full budget is
    /// distributed: the returned shares sum to exactly `total_bytes`.
    ///
    /// Pure planning — the ledger is untouched; apply with
    /// [`PoolBudget::rebalance`].
    pub fn proportional_shares(&self, requests: &[ShareRequest]) -> Vec<(u64, u64)> {
        Self::plan_proportional(self.total_bytes, requests)
    }

    /// [`PoolBudget::proportional_shares`] over an arbitrary sub-budget
    /// — the within-tenant half of a two-level tenant rebalance plans
    /// each tenant's holders over that tenant's budget with exactly the
    /// global planner's floor/remainder rules.
    fn plan_proportional(total_bytes: u64, requests: &[ShareRequest]) -> Vec<(u64, u64)> {
        let k = requests.len() as u64;
        if k == 0 {
            return Vec::new();
        }
        let cap = total_bytes / k;
        let base = total_bytes / (2 * k);
        let floors: Vec<u64> = requests
            .iter()
            .map(|r| r.floor.max(base).min(cap))
            .collect();
        let floored: u64 = floors.iter().sum();
        let remaining = total_bytes - floored; // floors ≤ k·cap ≤ total
        let weight_sum: u128 = requests.iter().map(|r| r.demand as u128).sum();
        let mut shares: Vec<(u64, u64)> = requests
            .iter()
            .zip(&floors)
            .map(|(r, &floor)| {
                let weighted = (remaining as u128 * r.demand as u128)
                    .checked_div(weight_sum)
                    .map_or_else(|| remaining / k, |w| w as u64);
                (r.holder, floor + weighted)
            })
            .collect();
        // Hand the rounding remainder to the hungriest holder: the full
        // budget is always distributed, so reclaiming idle reservation
        // conserves bytes instead of leaking them.
        let distributed: u64 = shares.iter().map(|&(_, s)| s).sum();
        let leftover = total_bytes - distributed;
        if leftover > 0 {
            let (pos, _) = requests
                .iter()
                .enumerate()
                .max_by_key(|(i, r)| (r.demand, std::cmp::Reverse(*i)))
                .expect("non-empty requests");
            shares[pos].1 += leftover;
        }
        shares
    }

    /// Atomically re-share the whole budget among the current holders by
    /// demand ([`PoolBudget::proportional_shares`]). Fails (changing
    /// nothing) unless `requests` names exactly the live holders. On
    /// success the ledger is fully subscribed (`reserved_bytes ==
    /// total_bytes`), every share respects its effective floor, and no
    /// overcommit is possible by construction.
    #[must_use]
    pub fn rebalance(&mut self, requests: &[ShareRequest]) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        if requests.len() != self.reserved.len()
            || requests
                .iter()
                .any(|r| !self.reserved.contains_key(&r.holder) || !seen.insert(r.holder))
        {
            return false;
        }
        // Distinct holders, all present, same count ⇒ exact cover.
        let shares = self.proportional_shares(requests);
        for &(holder, share) in &shares {
            self.reserved.insert(holder, share);
        }
        self.reserved_bytes = self.reserved.values().sum();
        debug_assert_eq!(self.reserved_bytes, self.total_bytes);
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }

    /// Set a hard byte cap for `tenant`, enforced by every subsequent
    /// [`PoolBudget::rebalance_tenants`]. Tenants without a cap are
    /// bounded only by the pool.
    pub fn set_tenant_cap(&mut self, tenant: u64, cap_bytes: u64) {
        self.tenant_caps.insert(tenant, cap_bytes);
    }

    /// The cap configured for `tenant` (`u64::MAX` when uncapped).
    pub fn tenant_cap(&self, tenant: u64) -> u64 {
        self.tenant_caps.get(&tenant).copied().unwrap_or(u64::MAX)
    }

    /// Bytes granted to `tenant`'s holders by the last tenant
    /// rebalance (0 before any).
    pub fn tenant_reserved(&self, tenant: u64) -> u64 {
        self.tenant_reserved.get(&tenant).copied().unwrap_or(0)
    }

    /// Lifetime high-water mark of [`PoolBudget::tenant_reserved`] —
    /// the steady-state shares the scheduler actually granted, audited
    /// against the cap by the noisy-neighbor bench.
    pub fn tenant_peak_reserved(&self, tenant: u64) -> u64 {
        self.tenant_peak.get(&tenant).copied().unwrap_or(0)
    }

    /// Every tenant's peak granted bytes, in tenant-id order.
    pub fn tenant_peaks(&self) -> Vec<(u64, u64)> {
        self.tenant_peak.iter().map(|(&t, &b)| (t, b)).collect()
    }

    /// Atomically re-share the budget among the current holders with
    /// two-level tenant fair-share: the pool is first split across the
    /// tenants present by weighted fair-share
    /// ([`tenant_weighted_budgets`]) — each tenant bounded by its
    /// configured cap and by what its holders can use (Σ demand/floor)
    /// — then each tenant's budget is split among its own holders with
    /// the demand-proportional planner
    /// ([`PoolBudget::proportional_shares`] over the tenant budget).
    ///
    /// This is where per-tenant caps are *enforced*: the plan can never
    /// grant a tenant's holders more than the tenant's cap, and the
    /// per-tenant grant (plus its lifetime peak) is recorded for audit.
    /// Unlike [`PoolBudget::rebalance`] the ledger may end
    /// under-subscribed — bytes a cap withholds stay free rather than
    /// spilling to other tenants' floors.
    ///
    /// Fails (changing nothing) unless `requests` names exactly the
    /// live holders, or if holders of one tenant disagree on weight.
    #[must_use]
    pub fn rebalance_tenants(&mut self, requests: &[TenantShareRequest]) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        if requests.len() != self.reserved.len()
            || requests
                .iter()
                .any(|r| !self.reserved.contains_key(&r.req.holder) || !seen.insert(r.req.holder))
        {
            return false;
        }
        // Group holders per tenant (BTreeMap: deterministic order).
        let mut groups: BTreeMap<u64, (u32, Vec<ShareRequest>)> = BTreeMap::new();
        for r in requests {
            let entry = groups.entry(r.tenant).or_insert((r.weight, Vec::new()));
            if entry.0 != r.weight {
                return false; // holders of one tenant must agree
            }
            entry.1.push(r.req);
        }
        // Level 1: weighted fair-share across the tenants present. A
        // tenant's usable bound is what its holders ask for — demand,
        // never below the floors that keep accepted tokens resident,
        // and never below the base share its holders are guaranteed —
        // so idle tenants release pool to hungry ones (work
        // conservation) without ever dipping below their floors.
        let rows: Vec<(u64, u32, u64, u64)> = groups
            .iter()
            .map(|(&tenant, (weight, reqs))| {
                let demand: u64 = reqs.iter().map(|r| r.demand).sum();
                let floor: u64 = reqs.iter().map(|r| r.floor).sum();
                let base = (self.total_bytes / (2 * requests.len() as u64).max(1))
                    .saturating_mul(reqs.len() as u64);
                let need = demand.max(floor).max(base);
                (tenant, *weight, self.tenant_cap(tenant), need)
            })
            .collect();
        let budgets = tenant_weighted_budgets(self.total_bytes, &rows);
        // Level 2: each tenant's holders split the tenant budget with
        // the demand-proportional planner (floors clamped to the
        // tenant's equal split exactly as the global planner clamps to
        // the pool's — a holder whose true working set exceeds its
        // clamped share relies on preemption/readmission, it never
        // steals from another tenant).
        self.tenant_reserved.clear();
        for (&tenant, (_, reqs)) in &groups {
            let budget = budgets
                .iter()
                .find(|&&(t, _)| t == tenant)
                .map_or(0, |&(_, b)| b);
            debug_assert!(budget <= self.tenant_cap(tenant), "cap enforced by planner");
            let mut granted = 0;
            for (holder, share) in Self::plan_proportional(budget, reqs) {
                self.reserved.insert(holder, share);
                granted += share;
            }
            self.tenant_reserved.insert(tenant, granted);
            let peak = self.tenant_peak.entry(tenant).or_insert(0);
            *peak = (*peak).max(granted);
        }
        self.reserved_bytes = self.reserved.values().sum();
        debug_assert!(self.reserved_bytes <= self.total_bytes);
        self.peak_reserved = self.peak_reserved.max(self.reserved_bytes);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_resize_release_roundtrip() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(7, 40));
        assert!(p.reserve(8, 60));
        assert_eq!(p.available_bytes(), 0);
        assert_eq!(p.holders(), 2);
        assert!(p.resize(7, 20));
        assert_eq!(p.available_bytes(), 20);
        assert!(p.resize(8, 80));
        assert_eq!(p.release(7), 20);
        assert_eq!(p.release(8), 80);
        assert_eq!(p.reserved_bytes(), 0);
        assert_eq!(p.peak_reserved_bytes(), 100);
    }

    #[test]
    fn overcommit_is_rejected_without_side_effects() {
        let mut p = PoolBudget::new(50);
        assert!(p.reserve(1, 30));
        assert!(!p.reserve(2, 30));
        assert_eq!(p.holders(), 1);
        assert!(!p.resize(1, 60));
        assert_eq!(p.share_of(1), 30);
        assert_eq!(p.peak_reserved_bytes(), 30);
    }

    #[test]
    fn duplicate_and_unknown_holders_fail() {
        let mut p = PoolBudget::new(50);
        assert!(p.reserve(1, 10));
        assert!(!p.reserve(1, 10), "double reservation must fail");
        assert!(!p.resize(2, 10), "unknown holder cannot resize");
        assert_eq!(p.release(2), 0, "unknown holder releases nothing");
        assert_eq!(p.share_of(2), 0);
    }

    #[test]
    fn equal_share_divides_the_budget() {
        let p = PoolBudget::new(99);
        assert_eq!(p.equal_share(1), 99);
        assert_eq!(p.equal_share(3), 33);
        assert_eq!(p.equal_share(0), 99, "zero holders degrades to full");
    }

    #[test]
    fn equal_share_remainder_covers_the_truncation() {
        for total in [0u64, 1, 99, 100, 1 << 30] {
            let p = PoolBudget::new(total);
            for k in 0usize..=7 {
                let share = p.equal_share(k);
                let rem = p.equal_share_remainder(k);
                assert_eq!(share * k.max(1) as u64 + rem, total);
                assert!(rem < k.max(1) as u64);
            }
        }
    }

    fn req(holder: u64, demand: u64, floor: u64) -> ShareRequest {
        ShareRequest {
            holder,
            demand,
            floor,
        }
    }

    #[test]
    fn proportional_shares_follow_demand_and_conserve_bytes() {
        let p = PoolBudget::new(1200);
        let shares = p.proportional_shares(&[req(1, 900, 0), req(2, 300, 0), req(3, 0, 0)]);
        let total: u64 = shares.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 1200, "full budget distributed");
        let of = |h: u64| shares.iter().find(|&&(x, _)| x == h).unwrap().1;
        // Base floor is total/(2k) = 200; the idle holder gets exactly it.
        assert_eq!(of(3), 200);
        assert!(of(1) > of(2), "deeper demand earns the bigger share");
        assert!(of(2) > of(3));
    }

    #[test]
    fn proportional_floors_are_respected_and_capped() {
        let p = PoolBudget::new(900);
        // Declared floor above the equal split is capped to it (300).
        let shares = p.proportional_shares(&[req(1, 0, 800), req(2, 0, 0), req(3, 0, 0)]);
        let of = |h: u64| shares.iter().find(|&&(x, _)| x == h).unwrap().1;
        assert!(of(1) >= 300, "floor capped at the equal split");
        assert!(of(2) >= 150 && of(3) >= 150, "base floor total/(2k)");
        assert_eq!(shares.iter().map(|&(_, s)| s).sum::<u64>(), 900);
        assert!(p.proportional_shares(&[]).is_empty());
    }

    #[test]
    fn rebalance_is_atomic_and_validates_holders() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(1, 50));
        assert!(p.reserve(2, 50));
        // Unknown holder, missing holder, duplicate holder: all rejected.
        assert!(!p.rebalance(&[req(1, 1, 0), req(3, 1, 0)]));
        assert!(!p.rebalance(&[req(1, 1, 0)]));
        assert!(!p.rebalance(&[req(1, 1, 0), req(1, 1, 0)]));
        assert_eq!(p.share_of(1), 50);
        assert_eq!(p.share_of(2), 50);
        // A valid rebalance re-shares the full budget by demand.
        assert!(p.rebalance(&[req(1, 300, 0), req(2, 100, 0)]));
        assert_eq!(p.reserved_bytes(), 100);
        assert!(p.share_of(1) > p.share_of(2));
        assert!(p.share_of(2) >= 25, "base floor total/(2k)");
        assert!(p.peak_reserved_bytes() <= p.total_bytes());
    }

    #[test]
    fn rebalance_reclaims_idle_reservation() {
        let mut p = PoolBudget::new(1000);
        assert!(p.reserve(1, 500));
        assert!(p.reserve(2, 500));
        // Holder 1 went idle (tiny demand); its excess flows to holder 2
        // without any release/re-reserve churn.
        assert!(p.rebalance(&[req(1, 10, 100), req(2, 2000, 100)]));
        assert!(p.share_of(2) > 500);
        assert!(p.share_of(1) >= 100, "floor keeps accepted tokens resident");
        assert_eq!(
            p.share_of(1) + p.share_of(2),
            1000,
            "reclaim conserves bytes"
        );
    }

    fn treq(holder: u64, tenant: u64, weight: u32, demand: u64, floor: u64) -> TenantShareRequest {
        TenantShareRequest {
            req: req(holder, demand, floor),
            tenant,
            weight,
        }
    }

    #[test]
    fn tenant_budgets_follow_weights_and_respect_limits() {
        // Weight 3:1, no binding caps: the split follows the weights.
        let b = tenant_weighted_budgets(
            1000,
            &[(0, 3, u64::MAX, 1_000_000), (1, 1, u64::MAX, 1_000_000)],
        );
        assert_eq!(b, vec![(0, 750), (1, 250)]);
        // A binding cap saturates the heavy tenant; the rest flows on.
        let b =
            tenant_weighted_budgets(1000, &[(0, 3, 300, 1_000_000), (1, 1, u64::MAX, 1_000_000)]);
        assert_eq!(b, vec![(0, 300), (1, 700)]);
        // Need bounds a tenant the same way a cap does.
        let b =
            tenant_weighted_budgets(1000, &[(0, 1, u64::MAX, 100), (1, 1, u64::MAX, 1_000_000)]);
        assert_eq!(b, vec![(0, 100), (1, 900)]);
        // Never over-distributes.
        let b = tenant_weighted_budgets(100, &[(0, 1, 30, 10), (1, 1, 20, 5)]);
        let total: u64 = b.iter().map(|&(_, x)| x).sum();
        assert!(total <= 100);
        assert!(b.iter().all(|&(t, x)| x <= if t == 0 { 10 } else { 5 }));
    }

    #[test]
    fn tenant_budgets_are_monotone_in_weight() {
        let base = tenant_weighted_budgets(
            10_000,
            &[(0, 2, u64::MAX, u64::MAX), (1, 2, u64::MAX, u64::MAX)],
        );
        let boosted = tenant_weighted_budgets(
            10_000,
            &[(0, 5, u64::MAX, u64::MAX), (1, 2, u64::MAX, u64::MAX)],
        );
        assert!(boosted[0].1 >= base[0].1);
    }

    #[test]
    fn rebalance_tenants_enforces_caps_and_tracks_peaks() {
        let mut p = PoolBudget::new(1000);
        p.set_tenant_cap(1, 400);
        assert!(p.reserve(10, 500));
        assert!(p.reserve(11, 500));
        // Holder 10 bills tenant 0 (uncapped), holder 11 tenant 1
        // (capped at 400) — both hungry, equal weight.
        assert!(p.rebalance_tenants(&[treq(10, 0, 1, 10_000, 100), treq(11, 1, 1, 10_000, 100),]));
        assert!(p.tenant_reserved(1) <= 400, "cap must bind");
        assert_eq!(p.share_of(11), p.tenant_reserved(1));
        assert!(
            p.share_of(10) >= p.share_of(11),
            "uncapped tenant gets the slack"
        );
        assert!(p.reserved_bytes() <= p.total_bytes());
        assert_eq!(p.tenant_peak_reserved(1), p.tenant_reserved(1));
        let first = p.tenant_reserved(1);
        // Peak is a high-water mark: shrinking the tenant's grant later
        // must not lower it.
        assert!(p.rebalance_tenants(&[treq(10, 0, 1, 10_000, 100), treq(11, 1, 1, 0, 0),]));
        assert!(p.tenant_reserved(1) <= first);
        assert_eq!(p.tenant_peak_reserved(1), first);
        assert_eq!(p.tenant_peaks().len(), 2);
    }

    #[test]
    fn rebalance_tenants_validates_holders_and_weights() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(1, 50));
        assert!(p.reserve(2, 50));
        // Unknown holder / missing holder / duplicate holder.
        assert!(!p.rebalance_tenants(&[treq(1, 0, 1, 1, 0), treq(3, 0, 1, 1, 0)]));
        assert!(!p.rebalance_tenants(&[treq(1, 0, 1, 1, 0)]));
        assert!(!p.rebalance_tenants(&[treq(1, 0, 1, 1, 0), treq(1, 0, 1, 1, 0)]));
        // Holders of one tenant disagreeing on weight.
        assert!(!p.rebalance_tenants(&[treq(1, 0, 1, 1, 0), treq(2, 0, 2, 1, 0)]));
        assert_eq!(p.share_of(1), 50, "failures change nothing");
    }

    #[test]
    fn single_tenant_rebalance_matches_untenanted_planning() {
        // One tenant with no cap degenerates to the demand-proportional
        // planner over the whole pool.
        let mut a = PoolBudget::new(1200);
        assert!(a.reserve(1, 600));
        assert!(a.reserve(2, 600));
        assert!(a.rebalance(&[req(1, 900, 50), req(2, 300, 50)]));
        let mut b = PoolBudget::new(1200);
        assert!(b.reserve(1, 600));
        assert!(b.reserve(2, 600));
        assert!(b.rebalance_tenants(&[treq(1, 7, 1, 900, 50), treq(2, 7, 1, 300, 50)]));
        assert_eq!(a.share_of(1), b.share_of(1));
        assert_eq!(a.share_of(2), b.share_of(2));
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let mut p = PoolBudget::new(100);
        assert!(p.reserve(1, 70));
        p.release(1);
        assert!(p.reserve(2, 10));
        assert_eq!(p.peak_reserved_bytes(), 70);
        assert_eq!(p.reserved_bytes(), 10);
    }
}
