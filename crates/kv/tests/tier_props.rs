//! Property-based tests for the host-RAM KV tier ([`HostTier`]).
//!
//! The tier is a byte ledger shared by parked (preempted) KV and
//! published shared prefixes, so the invariants are checked under
//! randomized mixes of park / unpark / publish / lookup:
//!
//! 1. **Byte conservation at every park** — `accepted + dropped ==
//!    requested`: a byte offered to the tier either parks or is counted
//!    as overflow, never silently lost or minted.
//! 2. **Never overcommitted** — `used == Σ parked + Σ prefix bytes <=
//!    capacity` after every operation, no matter the op sequence.
//! 3. **Unpark returns exactly what was parked** — per-owner parking is
//!    exact: the bytes reclaimed equal the accepted parks since the
//!    last unpark.
//! 4. **Disabled tier is silent** — a zero-capacity tier accepts
//!    nothing, hits nothing, and keeps every counter at zero (the
//!    legacy-equivalence anchor the schedulers rely on).

use std::collections::BTreeMap;

use ftts_kv::{HostTier, KvTierConfig, TierStats};
use proptest::prelude::*;

/// One scripted tier operation.
#[derive(Debug, Clone)]
enum Op {
    Park(u64, u64),
    Unpark(u64),
    Publish(u64, u64, u64),
    Lookup(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u64..6), (0u64..2000)).prop_map(|(o, b)| Op::Park(o, b)),
        (0u64..6).prop_map(Op::Unpark),
        ((0u64..8), (1u64..100), (0u64..2000)).prop_map(|(k, t, b)| Op::Publish(k, t, b)),
        (0u64..8).prop_map(Op::Lookup),
    ]
}

proptest! {
    #[test]
    fn tier_conserves_bytes_and_never_overcommits(
        capacity in 0u64..4000,
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut tier = HostTier::new(KvTierConfig::with_capacity(capacity));
        // Shadow ledger of accepted parks per owner.
        let mut shadow: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Park(owner, bytes) => {
                    let before = tier.stats().overflow_dropped_bytes;
                    let accepted = tier.park(owner, bytes);
                    let dropped = tier.stats().overflow_dropped_bytes - before;
                    if tier.enabled() {
                        prop_assert_eq!(
                            accepted + dropped, bytes,
                            "every offered byte parks or drops"
                        );
                    } else {
                        prop_assert_eq!(accepted, 0, "disabled tier accepts nothing");
                    }
                    *shadow.entry(owner).or_insert(0) += accepted;
                }
                Op::Unpark(owner) => {
                    let expected = shadow.remove(&owner).unwrap_or(0);
                    prop_assert_eq!(
                        tier.unpark(owner), expected,
                        "unpark returns exactly the accepted parks"
                    );
                }
                Op::Publish(key, tokens, bytes) => tier.publish_prefix(key, tokens, bytes),
                Op::Lookup(key) => { tier.lookup_prefix(key); }
            }
            prop_assert!(tier.used_bytes() <= tier.capacity_bytes(), "overcommitted");
            prop_assert_eq!(
                tier.used_bytes() + tier.available_bytes(),
                tier.capacity_bytes(),
                "used and free partition the capacity"
            );
        }
        let total_parked: u64 = shadow.values().sum();
        prop_assert!(total_parked <= tier.used_bytes(), "shadow ledger within used");
    }

    #[test]
    fn disabled_tier_stays_silent_under_any_script(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut tier = HostTier::new(KvTierConfig::default());
        for op in ops {
            match op {
                Op::Park(owner, bytes) => { prop_assert_eq!(tier.park(owner, bytes), 0); }
                Op::Unpark(owner) => { prop_assert_eq!(tier.unpark(owner), 0); }
                Op::Publish(key, tokens, bytes) => tier.publish_prefix(key, tokens, bytes),
                Op::Lookup(key) => { prop_assert!(tier.lookup_prefix(key).is_none()); }
            }
            prop_assert_eq!(tier.used_bytes(), 0);
            prop_assert_eq!(tier.resident_prefixes(), 0);
        }
        prop_assert_eq!(tier.stats(), TierStats::default(), "legacy runs stay silent");
    }
}
