//! Property-based tests for the elastic [`PoolBudget`] ledger.
//!
//! The demand-proportional rebalance is what lets deep beam searches
//! outgrow an equal split without ever endangering the ledger's core
//! guarantee, so the invariants are checked under randomized mixes of
//! reserve / resize / release / rebalance:
//!
//! 1. **Never overcommitted** — reservations (and their lifetime peak)
//!    never exceed the pool, no matter the op sequence.
//! 2. **Reclaim conserves bytes** — a rebalance redistributes exactly
//!    the full budget: idle reservation flows to hungry holders, no
//!    byte leaks, no byte is minted.
//! 3. **No starvation** — every holder's share stays at or above the
//!    base floor `total/(2k)`.
//! 4. **No stranding** — a share never drops below the holder's
//!    declared accepted-token floor (capped at the equal split, which
//!    is the most `k` holders can each be guaranteed).

use ftts_kv::{PoolBudget, ShareRequest};
use proptest::prelude::*;

/// One scripted ledger operation.
#[derive(Debug, Clone)]
enum Op {
    Reserve(u64, u64),
    Resize(u64, u64),
    Release(u64),
    /// Rebalance all live holders with per-holder (demand, floor) drawn
    /// from the two seeds.
    Rebalance(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u64..6), (0u64..2000)).prop_map(|(h, b)| Op::Reserve(h, b)),
        ((0u64..6), (0u64..2000)).prop_map(|(h, b)| Op::Resize(h, b)),
        (0u64..6).prop_map(Op::Release),
        ((1u64..1000), (0u64..1000)).prop_map(|(d, f)| Op::Rebalance(d, f)),
    ]
}

/// Deterministic per-holder demand/floor derived from the script seeds.
fn share_requests(pool: &PoolBudget, demand_seed: u64, floor_seed: u64) -> Vec<ShareRequest> {
    (0u64..6)
        .filter(|h| pool.share_of(*h) > 0 || pool_has(pool, *h))
        .map(|h| ShareRequest {
            holder: h,
            demand: (h + 1) * demand_seed % 1700,
            floor: (h + 1) * floor_seed % 900,
        })
        .collect()
}

/// `share_of` returns 0 both for unknown holders and zero-byte
/// reservations; a zero-byte reservation is still a live holder.
fn pool_has(pool: &PoolBudget, holder: u64) -> bool {
    // Probe: a duplicate reserve fails only for live holders.
    let mut probe = pool.clone();
    !probe.reserve(holder, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn elastic_ledger_invariants_hold(
        total in 64u64..4096,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut pool = PoolBudget::new(total);
        for op in &ops {
            match *op {
                Op::Reserve(h, b) => {
                    let before = pool.reserved_bytes();
                    let ok = pool.reserve(h, b);
                    if !ok {
                        prop_assert_eq!(pool.reserved_bytes(), before, "failed op mutated state");
                    }
                }
                Op::Resize(h, b) => {
                    let _ = pool.resize(h, b);
                }
                Op::Release(h) => {
                    let _ = pool.release(h);
                }
                Op::Rebalance(demand_seed, floor_seed) => {
                    let reqs = share_requests(&pool, demand_seed, floor_seed);
                    let holders = pool.holders();
                    if reqs.len() != holders || holders == 0 {
                        continue;
                    }
                    let before = pool.reserved_bytes();
                    let ok = pool.rebalance(&reqs);
                    if !ok {
                        prop_assert_eq!(pool.reserved_bytes(), before);
                        continue;
                    }
                    let k = reqs.len() as u64;
                    // (2) Reclaim conserves bytes: the whole budget and
                    // nothing but the budget is distributed.
                    prop_assert_eq!(pool.reserved_bytes(), total);
                    let sum: u64 = reqs.iter().map(|r| pool.share_of(r.holder)).sum();
                    prop_assert_eq!(sum, total, "shares must cover the ledger exactly");
                    for r in &reqs {
                        let share = pool.share_of(r.holder);
                        // (3) No starvation below the base floor.
                        prop_assert!(
                            share >= total / (2 * k),
                            "holder {} starved: {} < base floor {}",
                            r.holder, share, total / (2 * k)
                        );
                        // (4) Accepted tokens are never stranded: the
                        // declared floor holds up to the equal split.
                        prop_assert!(
                            share >= r.floor.min(total / k),
                            "holder {} stranded: {} < floor {}",
                            r.holder, share, r.floor.min(total / k)
                        );
                    }
                }
            }
            // (1) Never overcommitted, at every step.
            prop_assert!(pool.reserved_bytes() <= pool.total_bytes());
            prop_assert!(pool.peak_reserved_bytes() <= pool.total_bytes());
            prop_assert!(pool.available_bytes() <= pool.total_bytes());
        }
    }

    #[test]
    fn planned_shares_always_fit_and_respect_floors(
        total in 1u64..1_000_000,
        demands in prop::collection::vec(0u64..1_000_000, 1..9),
        floors in prop::collection::vec(0u64..1_000_000, 1..9),
    ) {
        let pool = PoolBudget::new(total);
        let k = demands.len().min(floors.len());
        let reqs: Vec<ShareRequest> = (0..k)
            .map(|i| ShareRequest { holder: i as u64, demand: demands[i], floor: floors[i] })
            .collect();
        let shares = pool.proportional_shares(&reqs);
        prop_assert_eq!(shares.len(), k);
        prop_assert_eq!(shares.iter().map(|&(_, s)| s).sum::<u64>(), total);
        for (r, &(h, s)) in reqs.iter().zip(&shares) {
            prop_assert_eq!(h, r.holder);
            prop_assert!(s >= total / (2 * k as u64));
            prop_assert!(s >= r.floor.min(total / k as u64));
        }
    }
}
