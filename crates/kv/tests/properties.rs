//! Property-based tests for the paged KV cache.
//!
//! These check the allocator's conservation laws and the prefix-tree
//! metric under randomized workloads — the invariants the scheduling
//! proofs in the paper's Appendix A lean on.

use ftts_kv::{KvCache, KvCacheConfig, KvError, NodeId, Residency};
use proptest::prelude::*;

fn config(capacity_blocks: u64, sharing: bool) -> KvCacheConfig {
    KvCacheConfig {
        block_size: 16,
        capacity_bytes: capacity_blocks * 16 * 8,
        bytes_per_token: 8,
        prefix_sharing: sharing,
    }
}

/// A random workload script interpreted against the cache.
#[derive(Debug, Clone)]
enum Op {
    Root(u64),
    Fork(usize),
    ForkAt(usize, u64),
    Pin(usize),
    Unpin(usize),
    Extend(usize, u64),
    Discard(usize),
    Resize(u64),
    SwapOut,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..200).prop_map(Op::Root),
        (0usize..64).prop_map(Op::Fork),
        ((0usize..64), (0u64..64)).prop_map(|(a, b)| Op::ForkAt(a, b)),
        (0usize..64).prop_map(Op::Pin),
        (0usize..64).prop_map(Op::Unpin),
        ((0usize..64), (1u64..100)).prop_map(|(a, b)| Op::Extend(a, b)),
        (0usize..64).prop_map(Op::Discard),
        (4u64..64).prop_map(Op::Resize),
        Just(Op::SwapOut),
    ]
}

/// Drive the script, tracking which nodes we pinned so unpins are legal.
/// Returns the cache plus the largest capacity (in blocks) it ever had —
/// the bound occupancy must respect across resizes.
fn run_script(ops: &[Op], capacity_blocks: u64, sharing: bool) -> (KvCache, u64) {
    let mut kv = KvCache::new(config(capacity_blocks, sharing));
    let mut max_capacity = capacity_blocks;
    let mut nodes: Vec<NodeId> = Vec::new();
    let mut pins: Vec<usize> = Vec::new(); // pin counts parallel to nodes
    for op in ops {
        match *op {
            Op::Root(t) => {
                nodes.push(kv.root(t).unwrap());
                pins.push(0);
            }
            Op::Fork(i) => {
                if !nodes.is_empty() {
                    let parent = nodes[i % nodes.len()];
                    nodes.push(kv.fork(parent).unwrap());
                    pins.push(0);
                }
            }
            Op::ForkAt(i, keep) => {
                if !nodes.is_empty() {
                    let parent = nodes[i % nodes.len()];
                    let keep = keep.min(kv.own_tokens(parent));
                    nodes.push(kv.fork_at(parent, keep).unwrap());
                    pins.push(0);
                }
            }
            Op::Pin(i) => {
                if !nodes.is_empty() {
                    let idx = i % nodes.len();
                    if kv.pin(nodes[idx]).is_ok() {
                        pins[idx] += 1;
                    }
                }
            }
            Op::Unpin(i) => {
                if !nodes.is_empty() {
                    let idx = i % nodes.len();
                    if pins[idx] > 0 {
                        kv.unpin(nodes[idx]);
                        pins[idx] -= 1;
                    }
                }
            }
            Op::Extend(i, t) => {
                if !nodes.is_empty() {
                    let idx = i % nodes.len();
                    match kv.extend(nodes[idx], t) {
                        Ok(())
                        | Err(KvError::ExtendNonLeaf(_))
                        | Err(KvError::NotResident(_))
                        | Err(KvError::InsufficientMemory { .. }) => {}
                    }
                }
            }
            Op::Discard(i) => {
                if !nodes.is_empty() {
                    kv.discard(nodes[i % nodes.len()]);
                }
            }
            Op::Resize(blocks) => {
                kv.set_capacity_bytes(blocks * 16 * 8);
                max_capacity = max_capacity.max(blocks);
            }
            Op::SwapOut => {
                kv.swap_out_unpinned();
            }
        }
    }
    (kv, max_capacity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pool never exceeds capacity, and occupancy equals the sum the
    /// stats imply (allocated minus evicted minus swapped-out plus
    /// swapped-in is an upper bound via peak tracking).
    #[test]
    fn occupancy_never_exceeds_capacity(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let capacity = 48u64;
        let (kv, max_capacity) = run_script(&ops, capacity, true);
        prop_assert!(kv.gpu_blocks_used() <= max_capacity);
        prop_assert!(kv.peak_blocks_used() <= max_capacity);
    }

    /// Same conservation law without prefix sharing.
    #[test]
    fn occupancy_bounded_without_sharing(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let capacity = 48u64;
        let (kv, max_capacity) = run_script(&ops, capacity, false);
        prop_assert!(kv.gpu_blocks_used() <= max_capacity);
    }

    /// shared_prefix is symmetric, bounded by both lengths, and maximal
    /// on identical sequences.
    #[test]
    fn shared_prefix_is_a_valid_meet(
        prompt in 1u64..100,
        grow_a in 0u64..100,
        grow_b in 0u64..100,
    ) {
        let mut kv = KvCache::new(config(10_000, true));
        let root = kv.root(prompt).unwrap();
        let a = kv.fork(root).unwrap();
        let b = kv.fork(root).unwrap();
        kv.pin(a).unwrap();
        kv.pin(b).unwrap();
        if grow_a > 0 { kv.extend(a, grow_a).unwrap(); }
        if grow_b > 0 { kv.extend(b, grow_b).unwrap(); }
        let p = kv.shared_prefix(a, b);
        prop_assert_eq!(p, kv.shared_prefix(b, a));
        prop_assert_eq!(p, prompt);
        prop_assert!(p <= kv.seq_tokens(a));
        prop_assert!(p <= kv.seq_tokens(b));
        prop_assert_eq!(kv.shared_prefix(a, a), kv.seq_tokens(a));
    }

    /// Evicted paths always repin with exactly their own token count as
    /// recompute (sharing mode), and repinning is idempotent.
    #[test]
    fn evicted_paths_recompute_their_tokens(
        prompt in 16u64..64,
        steps in prop::collection::vec(1u64..64, 1..6),
    ) {
        // Capacity exactly matches the competitor, so pinning it evicts
        // the whole earlier path.
        let mut kv = KvCache::new(config(300, true));
        let root = kv.root(prompt).unwrap();
        let leaf = kv.fork(root).unwrap();
        kv.pin(leaf).unwrap();
        let mut own = 0;
        for &s in &steps {
            kv.extend(leaf, s).unwrap();
            own += s;
        }
        kv.unpin(leaf);
        let other = kv.root(300 * 16).unwrap();
        kv.pin(other).unwrap();
        prop_assert_eq!(kv.residency(leaf), Residency::Absent);
        kv.unpin(other);
        let cost = kv.pin(leaf).unwrap();
        prop_assert_eq!(cost.recompute_tokens, own + prompt);
        let again = kv.pin(leaf).unwrap();
        prop_assert!(again.is_hit());
    }

    /// would_fit is sound: when it says yes for a fresh root, pin+extend
    /// succeeds.
    #[test]
    fn would_fit_is_sound_for_roots(
        prompt in 1u64..400,
        extra in 0u64..400,
        capacity in 4u64..64,
    ) {
        let mut kv = KvCache::new(config(capacity, true));
        let r = kv.root(prompt).unwrap();
        if kv.would_fit(r, extra) {
            kv.pin(r).unwrap();
            kv.extend(r, extra).unwrap();
        } else {
            // Not enough even with nothing else resident: must exceed capacity.
            prop_assert!(kv.blocks_needed(r, extra) > capacity);
        }
    }

    /// Swap-out then pin restores with transfer bytes and zero recompute.
    #[test]
    fn swap_roundtrip_preserves_tokens(prompt in 1u64..500) {
        let mut kv = KvCache::new(config(1000, true));
        let r = kv.root(prompt).unwrap();
        kv.pin(r).unwrap();
        kv.unpin(r);
        let out = kv.swap_out_unpinned();
        prop_assert_eq!(kv.residency(r), Residency::Host);
        let cost = kv.pin(r).unwrap();
        prop_assert_eq!(cost.recompute_tokens, 0);
        prop_assert_eq!(cost.transfer_in_bytes, out);
        prop_assert_eq!(kv.seq_tokens(r), prompt);
    }

    /// The incremental eviction index picks the exact victim sequence of
    /// the seed's brute-force scan: replay the same randomized workload
    /// against a scan-mode oracle cache and compare eviction logs, block
    /// occupancy, stats and per-node residency after every operation.
    /// The indexed cache is additionally audited against a fresh scan
    /// after each step.
    #[test]
    fn indexed_eviction_matches_scan_oracle(
        ops in prop::collection::vec(op_strategy(), 1..120),
        capacity in 8u64..64,
        sharing in any::<bool>(),
    ) {
        let mut indexed = KvCache::new(config(capacity, sharing));
        let mut oracle = KvCache::new(config(capacity, sharing));
        oracle.set_scan_eviction(true);
        indexed.enable_eviction_log();
        oracle.enable_eviction_log();
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut pins: Vec<usize> = Vec::new();
        for op in &ops {
            // Resolve the op against the shared script state once, then
            // apply the identical resolved op to both caches. Node ids
            // are arena-ordered and the op stream is identical, so both
            // caches always agree on ids.
            match *op {
                Op::Root(t) => {
                    let a = indexed.root(t).unwrap();
                    let b = oracle.root(t).unwrap();
                    prop_assert_eq!(a, b);
                    nodes.push(a);
                    pins.push(0);
                }
                Op::Fork(i) if !nodes.is_empty() => {
                    let parent = nodes[i % nodes.len()];
                    let a = indexed.fork(parent).unwrap();
                    let b = oracle.fork(parent).unwrap();
                    prop_assert_eq!(a, b);
                    nodes.push(a);
                    pins.push(0);
                }
                Op::ForkAt(i, keep) if !nodes.is_empty() => {
                    let parent = nodes[i % nodes.len()];
                    let keep = keep.min(indexed.own_tokens(parent));
                    let a = indexed.fork_at(parent, keep).unwrap();
                    let b = oracle.fork_at(parent, keep).unwrap();
                    prop_assert_eq!(a, b);
                    nodes.push(a);
                    pins.push(0);
                }
                Op::Pin(i) if !nodes.is_empty() => {
                    let idx = i % nodes.len();
                    let a = indexed.pin(nodes[idx]);
                    let b = oracle.pin(nodes[idx]);
                    prop_assert_eq!(a, b, "pin outcome diverged");
                    if a.is_ok() {
                        pins[idx] += 1;
                    }
                }
                Op::Unpin(i) if !nodes.is_empty() => {
                    let idx = i % nodes.len();
                    if pins[idx] > 0 {
                        indexed.unpin(nodes[idx]);
                        oracle.unpin(nodes[idx]);
                        pins[idx] -= 1;
                    }
                }
                Op::Extend(i, t) if !nodes.is_empty() => {
                    let idx = i % nodes.len();
                    let a = indexed.extend(nodes[idx], t);
                    let b = oracle.extend(nodes[idx], t);
                    prop_assert_eq!(a, b, "extend outcome diverged");
                }
                Op::Discard(i) if !nodes.is_empty() => {
                    let node = nodes[i % nodes.len()];
                    prop_assert_eq!(indexed.discard(node), oracle.discard(node));
                }
                Op::Resize(blocks) => {
                    indexed.set_capacity_bytes(blocks * 16 * 8);
                    oracle.set_capacity_bytes(blocks * 16 * 8);
                }
                Op::SwapOut => {
                    prop_assert_eq!(indexed.swap_out_unpinned(), oracle.swap_out_unpinned());
                }
                _ => {}
            }
            indexed.audit_eviction_index();
            prop_assert_eq!(indexed.take_eviction_log(), oracle.take_eviction_log());
            prop_assert_eq!(indexed.gpu_blocks_used(), oracle.gpu_blocks_used());
            prop_assert_eq!(indexed.stats(), oracle.stats());
            for &node in &nodes {
                prop_assert_eq!(indexed.residency(node), oracle.residency(node));
                prop_assert_eq!(indexed.is_pinned(node), oracle.is_pinned(node));
            }
        }
    }
}
