//! Quickstart: serve one math problem with FastTTS and compare against
//! the vLLM baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fasttts::{Dataset, GpuDevice, ModelPairing, SearchKind, TtsServer};

fn main() -> Result<(), fasttts::EngineError> {
    // A synthetic AIME-2024-like problem (see ftts-workload for how
    // datasets are modelled).
    let problem = Dataset::Aime2024.problems(1, 42)[0];

    // The paper's memory-constrained edge setup: a 24 GB RTX 4090
    // hosting a 1.5B generator plus a 1.5B process reward model.
    let device = GpuDevice::rtx4090();
    let models = ModelPairing::pair_1_5b_1_5b();

    let baseline = TtsServer::vllm_baseline(device.clone(), models.clone());
    let fasttts = TtsServer::fasttts(device, models);

    let n = 32; // parallel reasoning beams
    let slow = baseline.serve(&problem, n, SearchKind::BeamSearch)?;
    let fast = fasttts.serve(&problem, n, SearchKind::BeamSearch)?;

    println!(
        "problem difficulty: {:.2} (quality logits)",
        problem.difficulty
    );
    println!();
    println!("                      baseline    FastTTS");
    println!(
        "goodput (tok/s)       {:>8.1}   {:>8.1}",
        slow.goodput(),
        fast.goodput()
    );
    println!(
        "latency (s)           {:>8.1}   {:>8.1}",
        slow.latency(),
        fast.latency()
    );
    println!(
        "verifier latency (s)  {:>8.1}   {:>8.1}",
        slow.stats.breakdown().verifier,
        fast.stats.breakdown().verifier
    );
    println!(
        "speculated tokens     {:>8}   {:>8}",
        slow.stats.spec.spec_tokens, fast.stats.spec.spec_tokens
    );
    println!();
    println!(
        "answers match (algorithmic equivalence): {}",
        slow.answer == fast.answer
    );
    println!(
        "speedup: {:.2}x goodput, {:.0}% lower latency",
        fast.goodput() / slow.goodput(),
        100.0 * (1.0 - fast.latency() / slow.latency())
    );
    println!(
        "RESULT quickstart: speedup={:.2}x answers_match={}",
        fast.goodput() / slow.goodput(),
        slow.answer == fast.answer
    );
    Ok(())
}
