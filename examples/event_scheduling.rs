//! Event-driven (iteration-granularity) scheduling: the same
//! straggler-heavy overload stream served with lockstep rounds (every
//! request iterates once per round, then waits at the barrier) and with
//! `EventServerSim`, where requests advance at their own cadence and
//! co-batch opportunistically inside a configurable window.
//!
//! ```sh
//! cargo run --release --example event_scheduling
//! ```

use fasttts::{
    ArrivalPattern, BatchConfig, BatchRun, BatchedServerSim, Dataset, EventConfig, EventServerSim,
    GpuDevice, ModelPairing, SearchKind, TtsServer,
};

fn idle_fraction(run: &BatchRun) -> (f64, f64) {
    let mut idle = 0.0;
    let mut barrier = 0.0;
    let mut total = 0.0;
    for r in &run.served {
        let b = r.outcome.stats.breakdown();
        idle += b.idle;
        barrier += b.barrier_idle;
        total += b.total();
    }
    (idle / total.max(1e-12), barrier)
}

fn main() -> Result<(), fasttts::EngineError> {
    let mut server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    server.config_mut().seed = 17;
    // Shallow AMC requests interleaved with deep AIME stragglers: the
    // heterogeneity that makes lockstep rounds straggler-bound.
    let shallow = Dataset::Amc2023.problems(4, 29);
    let deep = Dataset::Aime2024.problems(2, 43);
    let problems = vec![
        shallow[0], deep[0], shallow[1], shallow[2], deep[1], shallow[3],
    ];
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);

    println!("6 requests (AMC + AIME stragglers), one arrival per second, n=16 beam search\n");
    println!(
        "{:<26} {:>14} {:>11} {:>10} {:>14} {:>14}",
        "scheduler", "goodput tok/s", "makespan s", "idle %", "barrier idle s", "launches"
    );
    let lockstep = BatchedServerSim::new(
        server.clone(),
        16,
        SearchKind::BeamSearch,
        BatchConfig::fused(6),
    )
    .run(&arrivals)?;
    let mut rows = vec![("lockstep fused-6".to_string(), lockstep)];
    for window in [0.0, 0.25, f64::INFINITY] {
        let run = EventServerSim::new(
            server.clone(),
            16,
            SearchKind::BeamSearch,
            EventConfig::windowed(6, window),
        )
        .run(&arrivals)?;
        rows.push((format!("event window {window:>5}s"), run));
    }
    for (label, run) in &rows {
        let s = run.stream_summary();
        let (idle, barrier) = idle_fraction(run);
        println!(
            "{label:<26} {:>14.1} {:>11.1} {:>9.1}% {:>14.1} {:>14}",
            s.stream_goodput,
            s.makespan,
            idle * 100.0,
            barrier,
            run.rounds,
        );
    }
    println!(
        "\nThe infinite window reproduces the lockstep rounds exactly (the\n\
         equivalence anchor); finite windows drain the barrier idle into\n\
         decode time, so the same requests finish far sooner — with\n\
         identical answers."
    );
    let (lock, event) = (&rows[0].1, &rows[2].1);
    for (l, e) in lock.served.iter().zip(&event.served) {
        assert_eq!(l.outcome.answer, e.outcome.answer, "schedule-invariant");
    }
    let speedup =
        event.stream_summary().stream_goodput / lock.stream_summary().stream_goodput.max(1e-12);
    println!(
        "RESULT event_scheduling: event_vs_lockstep={speedup:.2}x barrier_idle_drained={:.1}s",
        idle_fraction(lock).1
    );
    Ok(())
}
