//! Multi-tenant serving through the `ftts-serve` front door, driven
//! library-level (no socket): a premium tenant and a noisy best-effort
//! tenant share one device's KV pool. The noisy tenant floods the
//! server; the front door's working-set-aware admission refuses what
//! cannot fit its cap, and the in-simulation weighted rebalancer keeps
//! its KV footprint inside its hard share while the premium tenant's
//! deadlines stay protected.
//!
//! The wire protocol is exercised exactly as a TCP client would: each
//! frame is one JSON line handed to [`ServeRuntime::handle_line`], and
//! every reply is a deterministic JSON line back.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use fasttts::serve::{Json, ServeConfig, ServeRuntime};

const CONFIG: &str = r#"
[server]
seed = 11
n_beams = 4
max_batch = 4
window_secs = 0.2
memory_fraction = 0.5
max_prompt_tokens = 512

# Premium tenant: triple weight, uncapped KV.
[[tenants]]
id = 0
weight = 3
kv_cap_frac = 0.0
max_open = 0

# Noisy best-effort tenant: a quarter of the pool, six in flight.
[[tenants]]
id = 1
weight = 1
kv_cap_frac = 0.25
max_open = 6
"#;

fn main() {
    let config = ServeConfig::parse(CONFIG).expect("fixture config is valid");
    let mut runtime = ServeRuntime::new(config);

    // Premium tenant: four interactive requests with deadlines.
    for i in 0..4u64 {
        let frame = format!(
            "{{\"op\":\"submit\",\"id\":\"prem-{i}\",\"tenant\":0,\"slo\":\"interactive\",\
             \"dataset\":\"amc2023\",\"problem_seed\":{i},\"deadline_secs\":180.0,\
             \"arrive_at\":{:.1}}}",
            i as f64 * 2.0
        );
        assert!(runtime.handle_line(&frame).reply.contains("\"ok\":true"));
    }
    // Noisy tenant: a burst of ten batch requests at t=0; the quota
    // admits six, the rest are refused at the protocol layer.
    let mut refused = 0u32;
    for i in 0..10u64 {
        let frame = format!(
            "{{\"op\":\"submit\",\"id\":\"noisy-{i}\",\"tenant\":1,\"slo\":\"batch\",\
             \"dataset\":\"math500\",\"problem_seed\":{i},\"arrive_at\":0.0}}"
        );
        if !runtime.handle_line(&frame).reply.contains("\"ok\":true") {
            refused += 1;
        }
    }
    // The noisy tenant thinks better of one request.
    let cancel = runtime.handle_line("{\"op\":\"cancel\",\"id\":\"noisy-2\"}");
    assert!(cancel.reply.contains("\"cancelled\""), "{}", cancel.reply);

    let stats = runtime.handle_line("{\"op\":\"stats\"}").reply;
    let json = Json::parse(&stats).expect("stats reply is valid JSON");
    let tenants = match json.at("tenants") {
        Some(Json::Array(items)) => items.clone(),
        _ => panic!("stats carries a tenants array: {stats}"),
    };
    println!("tenant  requests  completed  hit-rate  goodput(tok/s)  kv-peak(MiB)");
    let mut hit = [0.0f64; 2];
    let mut peak = [0u64; 2];
    for t in &tenants {
        let id = t.number_at("tenant").expect("tenant id") as usize;
        hit[id] = t.number_at("deadline_hit_rate").expect("hit rate");
        peak[id] = t.number_at("kv_peak_bytes").expect("kv peak") as u64;
        println!(
            "{id:>6}  {:>8}  {:>9}  {:>8.2}  {:>14.0}  {:>12.1}",
            t.number_at("requests").expect("requests"),
            t.number_at("completed").expect("completed"),
            hit[id],
            t.number_at("stream_goodput").expect("goodput"),
            peak[id] as f64 / (1024.0 * 1024.0),
        );
    }
    let pool = json.number_at("pool_bytes").expect("pool") as u64;
    let cap = pool / 4;
    assert!(refused > 0, "the burst must overrun the noisy quota");
    assert!(
        peak[1] <= cap,
        "noisy tenant peak {} must stay inside its cap {cap}",
        peak[1]
    );
    println!(
        "RESULT multi_tenant: premium hit-rate {:.0}% | noisy kv peak {:.0} MiB <= cap {:.0} MiB | {refused} refused at the door",
        hit[0] * 100.0,
        peak[1] as f64 / (1024.0 * 1024.0),
        cap as f64 / (1024.0 * 1024.0)
    );
}
