//! Edge-device sweep: how FastTTS behaves as VRAM shrinks from an
//! RTX 4090 (24 GB) to a 3070 Ti (8 GB), where the memory allocator's
//! offloading extension kicks in (paper Sec. 4.3.2 / Fig. 15).
//!
//! ```sh
//! cargo run --release --example edge_devices
//! ```

use fasttts::{AblationFlags, Dataset, GpuDevice, ModelPairing, SearchKind, TtsServer};

fn main() -> Result<(), fasttts::EngineError> {
    let problem = Dataset::Aime2024.problems(1, 77)[0];
    let n = 32;
    println!("device sweep: one AIME problem, 1.5B+1.5B, n={n}\n");
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>12} {:>10}",
        "device", "base tok/s", "fast tok/s", "speedup", "offload (s)", "latency(s)"
    );
    let mut ahead = 0usize;
    let mut devices = 0usize;
    for device in GpuDevice::edge_presets() {
        let models = ModelPairing::pair_1_5b_1_5b();
        // On the smallest device FastTTS may offload the inactive
        // model's KV to host memory.
        let flags = if device.vram_bytes <= 8 * (1 << 30) {
            AblationFlags::fasttts_offload()
        } else {
            AblationFlags::fasttts()
        };
        let baseline = TtsServer::vllm_baseline(device.clone(), models.clone());
        let fasttts = TtsServer::with_flags(device.clone(), models, flags);
        let b = baseline.serve(&problem, n, SearchKind::BeamSearch)?;
        let f = fasttts.serve(&problem, n, SearchKind::BeamSearch)?;
        println!(
            "{:<14} {:>10.1} {:>10.1} {:>8.2}x {:>12.2} {:>10.1}",
            device.name,
            b.goodput(),
            f.goodput(),
            f.goodput() / b.goodput(),
            f.stats.breakdown().offload,
            f.latency(),
        );
        devices += 1;
        ahead += usize::from(f.goodput() > b.goodput());
    }
    println!("\npaper: FastTTS stays ahead on 12 GB and 8 GB parts; absolute goodput drops");
    println!("       on the 3070 Ti because offloading pays PCIe transfers (Fig. 15)");
    println!("RESULT edge_devices: fasttts_ahead_on={ahead}/{devices} devices");
    Ok(())
}
