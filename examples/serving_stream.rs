//! Request-stream serving with two-phase preemptive scheduling: while
//! another request waits, Speculative Beam Extension is suppressed;
//! when the queue is empty, idle slots speculate (paper Sec. 4.1.2).
//!
//! ```sh
//! cargo run --release --example serving_stream
//! ```

use fasttts::{ArrivalPattern, Dataset, GpuDevice, ModelPairing, SearchKind, ServerSim, TtsServer};

fn main() -> Result<(), fasttts::EngineError> {
    let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let sim = ServerSim::new(server, 16, SearchKind::BeamSearch);

    let problems = Dataset::Amc2023.problems(6, 5);
    // Poisson arrivals at roughly one request every 25 s: sometimes the
    // queue is empty (speculation runs), sometimes backed up (it stops).
    let arrivals = ArrivalPattern::Poisson { rate: 0.04 }.schedule(&problems, 11);

    let served = sim.run(&arrivals)?;
    println!(
        "{:<4} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "req", "arrive(s)", "queue(s)", "serve(s)", "total(s)", "spec tokens"
    );
    for (i, r) in served.iter().enumerate() {
        println!(
            "{:<4} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>12}",
            i,
            r.arrived_at,
            r.queue_delay(),
            r.outcome.latency(),
            r.total_latency(),
            r.outcome.stats.spec.spec_tokens,
        );
    }
    let specced = served
        .iter()
        .filter(|r| r.outcome.stats.spec.spec_tokens > 0)
        .count();
    println!(
        "\n{} of {} requests had idle capacity for speculation; queued requests preempt it",
        specced,
        served.len()
    );
    println!(
        "RESULT serving_stream: served={} speculated={specced}",
        served.len()
    );
    Ok(())
}
