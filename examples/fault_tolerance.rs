//! Fault-injected serving: the same seeded fault storm — transient
//! kernel failures, a device slowdown window, KV-block loss — replayed
//! over an SLO-mixed overload under three policies:
//!
//! * **no handling** — blind re-execution of every faulted launch;
//! * **retry** — checkpointed retry with exponential backoff from the
//!   last committed iteration (warm KV, deterministic replay after a
//!   KV loss);
//! * **degrade** — retry plus the SLO stack: working-set-aware
//!   admission, earliest-deadline-first ordering, deadline
//!   cancellation, and graceful TTS-budget degradation that shrinks
//!   beam widths under backlog before shedding anyone.
//!
//! The storm is a `FaultPlan` — a pure function of `(seed, horizon)` —
//! so every run here is bit-reproducible.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use fasttts::metrics::SloClass;
use fasttts::{
    ArrivalPattern, BatchConfig, BatchedServerSim, Dataset, FaultPlan, FaultPolicy, GpuDevice,
    ModelPairing, RobustConfig, SearchKind, StormConfig, TtsServer,
};

fn main() -> Result<(), fasttts::EngineError> {
    let server = || {
        let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        s.config_mut().seed = 17;
        s.config_mut().memory_fraction = 0.9;
        s
    };

    // Nine requests at a one-second cadence, SLO classes round-robin:
    // interactive (25 s deadline), standard (50 s), batch (90 s).
    let problems = Dataset::Amc2023.problems(9, 47);
    let slos = [
        (SloClass::Interactive, 25.0),
        (SloClass::Standard, 50.0),
        (SloClass::Batch, 90.0),
    ];
    let arrivals: Vec<_> = ArrivalPattern::Uniform { interval: 1.0 }
        .schedule(&problems, 0)
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let (class, slack) = slos[i % slos.len()];
            a.with_slo(class, slack)
        })
        .collect();

    // A deterministic storm: same seed, same faults, every time.
    let plan = FaultPlan::storm(101, 60.0, &StormConfig::default());
    println!("fault plan ({} events):", plan.events().len());
    for ev in plan.events() {
        println!("  t={:7.2}s  {:?}", ev.at, ev.kind);
    }

    println!("\npolicy comparison under the storm:");
    let mut runs = Vec::new();
    for (label, policy) in [
        ("no handling", FaultPolicy::NoHandling),
        ("retry", FaultPolicy::Retry),
        ("degrade", FaultPolicy::Degrade),
    ] {
        let cfg = BatchConfig::continuous(4).with_robust(RobustConfig::with_policy(policy));
        let run = BatchedServerSim::new(server(), 16, SearchKind::BeamSearch, cfg)
            .run_faulted(&arrivals, &plan)?;
        let s = run.stream_summary();
        println!(
            "  {label:<12} deadline hits {hit:>5.1}% | slo-goodput {slo:>7.1} tok/s | makespan {mk:>6.1} s | faults {kf} (retries {rt}) | kv-loss {kv} ({lost} blocks) | cancelled {cx} | beam degradations {deg}",
            hit = s.deadline_hit_rate * 100.0,
            slo = s.slo_goodput,
            mk = s.makespan,
            kf = run.kernel_faults,
            rt = run.fault_retries,
            kv = run.kv_loss_events,
            lost = run.lost_blocks,
            cx = run.cancelled,
            deg = run.degradations,
        );
        runs.push((label, run));
    }

    // Per-class view of the degrade run: interactive deadlines are
    // infeasible under this storm, so the controller sheds them early
    // instead of burning device time on work that will arrive late —
    // which is exactly what lets standard and batch traffic finish in
    // time.
    let degrade = &runs.last().expect("three runs").1;
    println!("\ndegrade policy, per SLO class:");
    let s = degrade.stream_summary();
    for class in SloClass::ALL {
        let cs = &s.per_class[class.index()];
        println!(
            "  {name:<12} {done}/{req} completed | {miss} deadline misses | {shed} shed | p50 {p50:>6.2} s | p99 {p99:>6.2} s",
            name = class.name(),
            done = cs.completed,
            req = cs.requests,
            miss = cs.deadline_misses,
            shed = cs.shed,
            p50 = cs.latency_p50,
            p99 = cs.latency_p99,
        );
    }

    // The whole point, in one line: under an identical fault schedule,
    // graceful degradation converts wasted retries into met deadlines.
    let hit = |i: usize| runs[i].1.stream_summary().deadline_hit_rate;
    assert!(hit(2) > hit(1) && hit(1) >= hit(0));
    println!(
        "\nRESULT fault_tolerance: degrade hit-rate {:.1}% vs retry {:.1}% vs no-handling {:.1}%",
        hit(2) * 100.0,
        hit(1) * 100.0,
        hit(0) * 100.0
    );
    Ok(())
}
