//! Host-RAM KV tiering: preempted requests swap their KV down to a
//! capacity-bounded host tier instead of dropping it, and completed
//! prompts publish shared prefixes that later requests for the same
//! problem admit warm from (prefill replaced by a costed swap-in).
//!
//! A Zipf-popular request stream (a hot head re-requested over and
//! over) bursts into a tight device pool, then keeps trickling in as
//! the burst drains. With the tier disabled the run is bit-identical
//! to the pre-tier server; starved, it degrades to drop-and-recompute;
//! ample, it parks every preempted byte and serves the Zipf head warm.
//!
//! ```sh
//! cargo run --release --example kv_tiering
//! ```

use fasttts::{
    zipf_problems, ArrivalPattern, BatchConfig, BatchedServerSim, Dataset, GpuDevice, KvTierConfig,
    ModelPairing, SearchKind, TtsServer,
};
use ftts_workload::RequestArrival;

fn server() -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = 13;
    // A tight pool: equal shares shrink until preemption fires.
    s.config_mut().memory_fraction = 0.27;
    s
}

/// Zipf burst + trailing repeats: pressure first, prefix reuse second.
fn arrivals() -> Vec<RequestArrival> {
    let ranked = Dataset::Aime2024.problems(4, 51);
    let drawn = zipf_problems(&ranked, 16, 1.2, 29);
    let mut arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&drawn[..8], 0);
    let mut trail = ArrivalPattern::Uniform { interval: 20.0 }.schedule(&drawn[8..], 0);
    for a in &mut trail {
        a.at += 700.0;
    }
    arrivals.extend(trail);
    arrivals
}

fn main() -> Result<(), fasttts::EngineError> {
    let stream = arrivals();
    println!("16 Zipf-popular AIME requests (4 distinct problems), n=24 beams, 27% memory\n");

    let tiers = [
        ("disabled (legacy)", KvTierConfig::default()),
        ("starved (4 KiB)", KvTierConfig::with_capacity(4096)),
        ("ample (8 GiB)", KvTierConfig::with_capacity(1 << 33)),
    ];
    let mut runs = Vec::new();
    for (label, tier) in tiers {
        let cfg = BatchConfig::continuous(4).with_tier(tier);
        let run = BatchedServerSim::new(server(), 24, SearchKind::BeamSearch, cfg).run(&stream)?;
        let summary = run.stream_summary();
        println!(
            "{label:<18} goodput {:>7.1} tok/s | preemptions {:>2} | warm hits {} | parked {:>6.1} MiB | dropped {:>6.1} MiB",
            summary.stream_goodput,
            run.preemptions,
            run.kv_tier_hits,
            run.kv_tier_parked_bytes as f64 / (1 << 20) as f64,
            run.kv_tier_dropped_bytes as f64 / (1 << 20) as f64,
        );
        runs.push(run);
    }

    // Placement moves time, never tokens: every tier serves the same
    // answers.
    for run in &runs[1..] {
        for (a, b) in runs[0].served.iter().zip(&run.served) {
            assert_eq!(a.outcome.answer, b.outcome.answer, "tier-invariant answers");
        }
    }

    let (drop_run, swap_run) = (&runs[1], &runs[2]);
    println!(
        "\nample tier: every preempted byte parked ({} dropped), {} warm admissions",
        swap_run.kv_tier_dropped_bytes, swap_run.kv_tier_hits
    );
    println!("starved tier: preemption overflow genuinely dropped, paid back as recompute");
    println!(
        "RESULT kv_tiering: warm_hits={} parked_mib={:.0} dropped_mib={:.0}",
        swap_run.kv_tier_hits,
        swap_run.kv_tier_parked_bytes as f64 / (1 << 20) as f64,
        drop_run.kv_tier_dropped_bytes as f64 / (1 << 20) as f64,
    );
    Ok(())
}
