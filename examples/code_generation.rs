//! Code-generation workload (HumanEval-like): the paper's generality
//! study (Fig. 15) shows FastTTS's execution-pattern optimizations
//! transfer beyond math reasoning.
//!
//! ```sh
//! cargo run --release --example code_generation
//! ```

use fasttts::{Dataset, GpuDevice, ModelPairing, SearchKind, TtsServer};

fn main() -> Result<(), fasttts::EngineError> {
    let device = GpuDevice::rtx4090();
    let models = ModelPairing::pair_1_5b_1_5b();
    let baseline = TtsServer::vllm_baseline(device.clone(), models.clone());
    let fasttts = TtsServer::fasttts(device, models);

    let problems = Dataset::HumanEval.problems(8, 3);
    println!(
        "HumanEval-like code generation, {} tasks, n=32 beams\n",
        problems.len()
    );
    let mut base_gp = 0.0;
    let mut fast_gp = 0.0;
    let mut solved = 0;
    for (i, p) in problems.iter().enumerate() {
        let b = baseline.serve(p, 32, SearchKind::BeamSearch)?;
        let f = fasttts.serve(p, 32, SearchKind::BeamSearch)?;
        assert_eq!(b.answer, f.answer, "must be algorithmically equivalent");
        base_gp += b.goodput();
        fast_gp += f.goodput();
        solved += usize::from(f.top1_correct());
        println!(
            "task {:>2}: {}  baseline {:>6.1} tok/s  fasttts {:>6.1} tok/s  ({:.2}x)",
            i,
            if f.top1_correct() { "pass" } else { "fail" },
            b.goodput(),
            f.goodput(),
            f.goodput() / b.goodput()
        );
    }
    let k = problems.len() as f64;
    println!();
    println!("solved {}/{} tasks", solved, problems.len());
    println!(
        "mean goodput: baseline {:.1} tok/s, FastTTS {:.1} tok/s ({:.2}x)",
        base_gp / k,
        fast_gp / k,
        fast_gp / base_gp
    );
    println!("paper: 1.3x-1.8x on HumanEval (Fig. 15)");
    println!(
        "RESULT code_generation: solved={solved}/{} speedup={:.2}x",
        problems.len(),
        fast_gp / base_gp
    );
    Ok(())
}
