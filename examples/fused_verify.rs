//! Cross-request verifier co-batching and demand-proportional KV
//! shares: serve one overload stream under the PR-2 policy (per-request
//! verifier sweeps, equal shares) and the PR-3 policy (one fused
//! verifier sweep per round, elastic demand-proportional shares), then
//! an opt-in First Finish run that trades sibling beams for stream
//! completion time.
//!
//! Run with `cargo run --release --example fused_verify`.

use ftts_core::{BatchConfig, BatchedServerSim, TtsServer};
use ftts_engine::ModelPairing;
use ftts_hw::GpuDevice;
use ftts_search::SearchKind;
use ftts_workload::{ArrivalPattern, Dataset};

fn main() {
    let mut server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    server.config_mut().seed = 17;
    let problems = Dataset::Amc2023.problems(6, 29);
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);

    println!("6 requests, one arrival per second, n=16 beam search\n");
    let mut goodputs = Vec::new();
    for (label, config) in [
        (
            "continuous-4 (equal shares, per-request verify)",
            BatchConfig::continuous(4),
        ),
        (
            "fused-6 (demand shares, fused verify)",
            BatchConfig::fused(6),
        ),
        (
            "fused-6 + first-finish @0.62",
            BatchConfig::fused(6).with_first_finish(0.62),
        ),
    ] {
        let run = BatchedServerSim::new(server.clone(), 16, SearchKind::BeamSearch, config)
            .run(&arrivals)
            .expect("stream serves");
        let s = run.stream_summary();
        println!("{label}");
        println!(
            "  stream goodput {:>8.1} tok/s | makespan {:>6.1} s | mean latency {:>6.1} s",
            s.stream_goodput, s.makespan, s.latency.mean
        );
        println!(
            "  verifier: {} sweeps, {:.1} seqs/sweep occupancy, {:.1} s busy (attributed once)",
            run.ver_sweeps, s.verifier_occupancy, run.ver_busy_secs
        );
        println!(
            "  per-phase goodput: generator {:.0} tok/s, verifier {:.0} tok/s",
            s.generator_goodput, s.verifier_goodput
        );
        let cuts: u32 = run
            .served
            .iter()
            .map(|r| r.outcome.stats.first_finish_cuts)
            .sum();
        if cuts > 0 {
            println!("  first-finish cuts fired: {cuts}");
        }
        println!();
        goodputs.push(s.stream_goodput);
    }
    println!(
        "RESULT fused_verify: fused_vs_continuous={:.2}x",
        goodputs[1] / goodputs[0]
    );
}
