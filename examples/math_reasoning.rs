//! Math-reasoning workload: evaluate FastTTS on an AIME-like problem set
//! with accuracy metrics — the paper's core application (Sec. 6.1-6.3).
//!
//! ```sh
//! cargo run --release --example math_reasoning
//! ```

use fasttts::metrics::pass_at_n;
use fasttts::{Dataset, GpuDevice, ModelPairing, SearchKind, TtsServer};

fn main() -> Result<(), fasttts::EngineError> {
    let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b());
    let problems = Dataset::Aime2024.problems(10, 7);
    let n = 32;

    println!(
        "serving {} AIME-like problems with n={n} beams (1.5B generator + 7B PRM)\n",
        problems.len()
    );
    let mut top1 = 0;
    let mut pass8 = 0;
    let mut goodput = 0.0;
    let mut latency = 0.0;
    for (i, p) in problems.iter().enumerate() {
        let out = server.serve(p, n, SearchKind::BeamSearch)?;
        let correct = out.top1_correct();
        top1 += usize::from(correct);
        pass8 += usize::from(pass_at_n(&out.stats.candidates(), 8));
        goodput += out.goodput();
        latency += out.latency();
        println!(
            "problem {:>2}: difficulty {:.2}  answer {:?}  {}  ({:.1} tok/s, {:.1} s, {} paths)",
            i,
            p.difficulty,
            out.answer,
            if correct { "correct" } else { "wrong" },
            out.goodput(),
            out.latency(),
            out.stats.beams.len(),
        );
    }
    let k = problems.len() as f64;
    println!();
    println!("top-1 (majority vote): {}/{}", top1, problems.len());
    println!("pass@8 (verifier-ranked): {}/{}", pass8, problems.len());
    println!(
        "mean goodput: {:.1} tok/s   mean latency: {:.1} s",
        goodput / k,
        latency / k
    );
    println!(
        "RESULT math_reasoning: top1={top1}/{} mean_goodput={:.1}",
        problems.len(),
        goodput / k
    );
    Ok(())
}
