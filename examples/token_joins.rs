//! Token-granularity decode joins on the global device timeline: the
//! same straggler stream served by iteration-granularity event
//! scheduling and by `TimelineServerSim` with token joins, both under
//! honest contention pricing (overlapping launches retroactively
//! stretch each other on the shared device clock). With joins on,
//! arrivals enter the in-flight decode batch at the next token-chunk
//! boundary instead of waiting for a launch boundary.
//!
//! ```sh
//! cargo run --release --example token_joins
//! ```

use fasttts::{
    ArrivalPattern, BatchRun, Dataset, EventConfig, EventServerSim, FaultPlan, GpuDevice,
    ModelPairing, SearchKind, TimelineConfig, TtsServer,
};

fn server() -> TtsServer {
    let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    s.config_mut().seed = 17;
    s
}

fn profile(run: &BatchRun) -> (f64, f64) {
    run.served.iter().fold((0.0, 0.0), |(c, j), r| {
        let b = r.outcome.stats.breakdown();
        (c + b.contention, j + b.join_wait)
    })
}

fn main() -> Result<(), fasttts::EngineError> {
    // Shallow AMC requests interleaved with deep AIME stragglers: the
    // arrivals that land mid-launch and want to join the decode batch.
    let shallow = Dataset::Amc2023.problems(4, 29);
    let deep = Dataset::Aime2024.problems(2, 43);
    let problems = vec![
        shallow[0], deep[0], shallow[1], shallow[2], deep[1], shallow[3],
    ];
    let arrivals = ArrivalPattern::Uniform { interval: 1.5 }.schedule(&problems, 0);

    println!("6 requests (AMC + AIME stragglers), one arrival per 1.5 s, n=16 beam search\n");
    let event = EventServerSim::new(
        server(),
        16,
        SearchKind::BeamSearch,
        EventConfig::windowed(6, 0.0),
    )
    .run(&arrivals)?;
    let timeline = |config: TimelineConfig| {
        fasttts::TimelineServerSim::new(server(), 16, SearchKind::BeamSearch, config)
            .run_faulted(&arrivals, &FaultPlan::none())
    };
    let anchored = timeline(TimelineConfig::anchored(EventConfig::windowed(6, 0.0)))?;
    let honest = timeline(TimelineConfig::honest(EventConfig::windowed(6, 0.0)))?;
    let joins = timeline(
        TimelineConfig::honest(EventConfig::windowed(6, 0.0))
            .with_token_joins()
            .with_join_quantum(2),
    )?;

    println!(
        "{:<22} {:>14} {:>11} {:>13} {:>12} {:>10}",
        "scheduler", "goodput tok/s", "makespan s", "contention s", "join-wait s", "stretch s"
    );
    for (label, run) in [
        ("event w=0", &event),
        ("timeline anchored", &anchored),
        ("timeline honest", &honest),
        ("timeline token-joins", &joins),
    ] {
        let s = run.stream_summary();
        let (contention, join_wait) = profile(run);
        println!(
            "{label:<22} {:>14.1} {:>11.1} {:>13.2} {:>12.2} {:>10.2}",
            s.stream_goodput, s.makespan, contention, join_wait, run.timeline.stretch_secs,
        );
    }

    // The anchored timeline is the equivalence anchor: same instants,
    // same answers, same breakdowns as the event scheduler.
    for (e, a) in event.served.iter().zip(&anchored.served) {
        assert_eq!(e.started_at, a.started_at, "anchored instants match");
        assert_eq!(e.finished_at, a.finished_at, "anchored instants match");
        assert_eq!(e.outcome.answer, a.outcome.answer, "anchored answers match");
    }
    // Answers are schedule-invariant under honest pricing and joins.
    for other in [&honest, &joins] {
        for (e, o) in event.served.iter().zip(&other.served) {
            assert_eq!(e.outcome.answer, o.outcome.answer, "schedule-invariant");
        }
    }
    println!(
        "\nThe anchored timeline reproduces the event scheduler exactly while\n\
         recording every launch as costed segments on one device clock.\n\
         Honest mode retroactively stretches overlapped launches (window 0\n\
         stops getting free overlap); token joins then win the stretch back\n\
         by admitting arrivals at chunk boundaries instead of launch\n\
         boundaries — same answers, earlier joins."
    );
    let speedup =
        joins.stream_summary().stream_goodput / honest.stream_summary().stream_goodput.max(1e-12);
    let (_, join_wait) = profile(&joins);
    println!(
        "RESULT token_joins: joins_vs_iteration={speedup:.3}x stretch_honest={:.2}s join_wait={join_wait:.2}s",
        honest.timeline.stretch_secs
    );
    Ok(())
}
