//! Fleet serving that survives a device crash: a four-replica edge
//! fleet serves a Zipf request stream with deadlines while device 1
//! crashes mid-run and stays down. The same trace and the same crash
//! are replayed twice:
//!
//! * **no failover** — the naive baseline: the crash is an on-device
//!   outage (stall, KV loss, checkpointed replay on recovery) and the
//!   router keeps sending work into the hole;
//! * **failover + hedging** — the crash is handled at the routing
//!   layer: interrupted requests migrate to surviving replicas
//!   (warm-starting from the host tier when they had already
//!   prefilled), the router steers around the downtime window, and
//!   stragglers get a hedged duplicate on a second replica — first
//!   finisher wins, the loser is cancelled with full KV reclaim.
//!
//! Both runs are bit-deterministic: same seeds, same crash, same
//! numbers, every time.
//!
//! ```sh
//! cargo run --release --example fleet_failover
//! ```

use fasttts::metrics::SloClass;
use fasttts::{
    zipf_problems, ArrivalPattern, BatchConfig, Dataset, EventConfig, FaultEvent, FaultKind,
    FaultPlan, FleetConfig, FleetSim, GpuDevice, HedgeConfig, KvTierConfig, ModelPairing,
    RoutePolicy, SearchKind, TtsServer,
};

const DEVICES: usize = 4;
const CRASH_DEVICE: usize = 1;
const CRASH_AT_S: f64 = 25.0;
const CRASH_DOWN_S: f64 = 300.0;

fn main() -> Result<(), fasttts::EngineError> {
    let server = || {
        let mut s = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        s.config_mut().seed = 17;
        s.config_mut().memory_fraction = 0.55;
        s
    };

    // Twelve Zipf draws over four distinct problems, four-second
    // cadence, round-robin SLO deadlines.
    let ranked = Dataset::Amc2023.problems(4, 47);
    let drawn = zipf_problems(&ranked, 12, 1.2, 29);
    let slos = [
        (SloClass::Interactive, 90.0),
        (SloClass::Standard, 120.0),
        (SloClass::Batch, 180.0),
    ];
    let arrivals: Vec<_> = ArrivalPattern::Uniform { interval: 4.0 }
        .schedule(&drawn, 0)
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let (class, slack) = slos[i % slos.len()];
            a.with_slo(class, slack)
        })
        .collect();

    // One seeded crash: device 1 goes dark at t = 25 s for 300 s.
    let mut plans = vec![FaultPlan::none(); DEVICES];
    plans[CRASH_DEVICE] = FaultPlan::new(vec![FaultEvent {
        at: CRASH_AT_S,
        kind: FaultKind::DeviceCrash {
            down_for: CRASH_DOWN_S,
        },
    }]);

    let event = EventConfig::new(
        BatchConfig::continuous(4).with_tier(KvTierConfig::with_capacity(1 << 33)),
        0.25,
    );
    let fleet = |config: FleetConfig| {
        FleetSim::new(
            (0..DEVICES).map(|_| server()).collect(),
            16,
            SearchKind::BeamSearch,
            config,
        )
    };

    println!(
        "four-device fleet, device {CRASH_DEVICE} down [{CRASH_AT_S:.0}, {:.0}] s:\n",
        CRASH_AT_S + CRASH_DOWN_S
    );
    let naive = fleet(FleetConfig::new(event, RoutePolicy::Jsq).without_failover())
        .run_faulted(&arrivals, &plans)?;
    let robust = fleet(
        FleetConfig::new(event, RoutePolicy::Jsq).with_hedge(HedgeConfig {
            delay_factor: 1.5,
            min_samples: 3,
            min_delay_secs: 5.0,
        }),
    )
    .run_faulted(&arrivals, &plans)?;

    for (label, run) in [("no failover", &naive), ("failover + hedging", &robust)] {
        let s = run.summary();
        println!(
            "{label:<20} deadline-hit {hit:5.1}% | slo goodput {gp:8.1} tok/s | makespan {mk:6.1} s | migrations {m} | hedges {hl} launched / {hw} won",
            hit = 100.0 * s.deadline_hit_rate(),
            gp = s.slo_goodput(),
            mk = s.fleet.makespan,
            m = s.migrations,
            hl = s.hedges_launched,
            hw = s.hedges_won,
        );
        for (d, dev) in s.per_device.iter().enumerate() {
            let down = if d == CRASH_DEVICE && s.crash_downtime_secs > 0.0 {
                " (crashed)"
            } else {
                ""
            };
            println!(
                "    device {d}{down:<10} {req:2} legs | completed {done:2} | goodput {gp:8.1} tok/s",
                req = dev.requests,
                done = dev.requests - dev.shed,
                gp = dev.stream_goodput,
            );
        }
    }

    let (ns, rs) = (naive.summary(), robust.summary());
    println!(
        "\nfailover + hedging recovers {:.1}% of deadline hits and {:.1}x the SLO goodput \
         the naive fleet loses to the crash",
        100.0 * (rs.deadline_hit_rate() - ns.deadline_hit_rate()),
        rs.slo_goodput() / ns.slo_goodput().max(1e-12),
    );
    println!(
        "RESULT fleet_failover: hit {:.1}% vs {:.1}% | slo_goodput {:.0} vs {:.0} tok/s | migrations {}",
        100.0 * rs.deadline_hit_rate(),
        100.0 * ns.deadline_hit_rate(),
        rs.slo_goodput(),
        ns.slo_goodput(),
        rs.migrations,
    );
    Ok(())
}
