//! Continuous batching across requests: the same overloaded arrival
//! stream served FIFO batch-1 (the paper's interactive setting), as an
//! idle-gang batch, and with full mid-flight admission against a shared
//! KV pool.
//!
//! ```sh
//! cargo run --release --example continuous_batching
//! ```

use fasttts::{
    ArrivalPattern, BatchConfig, BatchedServerSim, Dataset, GpuDevice, ModelPairing, SearchKind,
    TtsServer,
};

fn main() -> Result<(), fasttts::EngineError> {
    let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let problems = Dataset::Amc2023.problems(6, 29);
    // One arrival per second against multi-second service times:
    // offered load far above single-request capacity.
    let arrivals = ArrivalPattern::Uniform { interval: 1.0 }.schedule(&problems, 0);

    println!(
        "{:<14} {:>14} {:>12} {:>14} {:>12} {:>6}",
        "policy", "goodput tok/s", "makespan s", "mean latency", "mean queue", "preempt"
    );
    let mut goodputs = Vec::new();
    for (label, config) in [
        ("fifo batch-1", BatchConfig::fifo()),
        ("gang-3", BatchConfig::gang(3)),
        ("continuous-3", BatchConfig::continuous(3)),
    ] {
        let sim = BatchedServerSim::new(server.clone(), 8, SearchKind::BeamSearch, config);
        let run = sim.run(&arrivals)?;
        let s = run.stream_summary();
        println!(
            "{label:<14} {:>14.1} {:>12.1} {:>14.1} {:>12.1} {:>6}",
            s.stream_goodput, s.makespan, s.latency.mean, s.queue_delay.mean, run.preemptions,
        );
        goodputs.push(s.stream_goodput);
    }
    println!(
        "\nMid-flight admission keeps the decode batch wide (one shared weight\n\
         sweep for every co-resident sequence), so overload drains far faster\n\
         than run-to-completion scheduling — while answers stay identical."
    );
    println!(
        "RESULT continuous_batching: continuous_vs_fifo={:.2}x",
        goodputs[2] / goodputs[0]
    );
    Ok(())
}
