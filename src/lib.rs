//! # FastTTS — Accelerating Test-Time Scaling for Edge LLM Reasoning
//!
//! A complete, simulation-based reproduction of the FastTTS serving
//! system (ASPLOS 2026). This facade crate re-exports the whole
//! workspace so applications can depend on a single crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`hw`] | `ftts-hw` | GPU specs, model architectures, roofline cost model |
//! | [`kv`] | `ftts-kv` | Paged KV cache: COW prefix tree, eviction, offload |
//! | [`model`] | `ftts-model` | Synthetic generator + PRM behaviour models |
//! | [`workload`] | `ftts-workload` | AIME/AMC/MATH-500/HumanEval analogues, arrivals |
//! | [`metrics`] | `ftts-metrics` | Precise goodput, latency breakdowns, Top-1/Pass@N |
//! | [`engine`] | `ftts-engine` | The vLLM-like serving loop with stragglers & batching |
//! | [`search`] | `ftts-search` | Best-of-N, Beam Search, DVTS, Dynamic Branching, VG |
//! | [`core`] | `ftts-core` | FastTTS itself: S + P + M optimizations, serving facade |
//! | [`serve`] | `ftts-serve` | Multi-tenant TCP front-end: wire protocol, quotas, caps |
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Example
//!
//! ```
//! use fasttts::{Dataset, GpuDevice, ModelPairing, SearchKind, TtsServer};
//!
//! let problem = Dataset::Amc2023.problems(1, 1)[0];
//! let baseline = TtsServer::vllm_baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
//! let fasttts = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
//! let slow = baseline.serve(&problem, 16, SearchKind::BeamSearch)?;
//! let fast = fasttts.serve(&problem, 16, SearchKind::BeamSearch)?;
//! assert!(fast.goodput() > slow.goodput());
//! assert_eq!(fast.answer, slow.answer); // algorithmic equivalence
//! # Ok::<(), fasttts::EngineError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ftts_core as core;
pub use ftts_engine as engine;
pub use ftts_hw as hw;
pub use ftts_kv as kv;
pub use ftts_metrics as metrics;
pub use ftts_model as model;
pub use ftts_search as search;
pub use ftts_serve as serve;
pub use ftts_workload as workload;

pub use ftts_core::{
    degraded_beams, evaluate, parallel_map, sweep, AblationFlags, BatchConfig, BatchRun,
    BatchedServerSim, EngineError, EvalConfig, EvalSummary, EventConfig, EventServerSim,
    FaultEvent, FaultKind, FaultPlan, FaultPolicy, FleetConfig, FleetRun, FleetSim, HedgeConfig,
    HostTier, HotnessPolicy, KvTierConfig, LruAccessHotness, PrefixAwareOrder, RobustConfig,
    RooflinePlanner, RoutePolicy, ServeOutcome, ServedRequest, ServerSim, SpecConfig, StormConfig,
    SweepJob, TierStats, TimelineConfig, TimelineServerSim, TimelineTuning, TtsServer,
    WorstCaseOrder,
};
pub use ftts_engine::{
    Engine, EngineConfig, ModelPairing, RequestRun, RunStats, SearchDriver, StepStatus,
};
pub use ftts_hw::{GpuDevice, ModelSpec, Roofline};
pub use ftts_search::SearchKind;
pub use ftts_workload::{zipf_problems, ArrivalPattern, Dataset};
