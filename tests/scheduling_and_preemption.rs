//! Scheduling-policy and preemption semantics across the stack.

use fasttts::engine::{OrderItem, OrderPolicy, RandomOrder};
use fasttts::kv::{KvCache, KvCacheConfig};
use fasttts::{
    ArrivalPattern, Dataset, GpuDevice, ModelPairing, PrefixAwareOrder, SearchKind, ServerSim,
    TtsServer, WorstCaseOrder,
};
use proptest::prelude::*;

/// Random beam-search-like frontiers for order-policy properties.
fn random_frontier(parents: usize, children: usize, prompt: u64) -> (KvCache, Vec<OrderItem>) {
    let mut kv = KvCache::new(KvCacheConfig {
        block_size: 16,
        capacity_bytes: 1 << 30,
        bytes_per_token: 64,
        prefix_sharing: true,
    });
    let root = kv.root(prompt).unwrap();
    kv.pin(root).unwrap();
    let mut items = Vec::new();
    let mut rank = 0u32;
    for i in 0..parents {
        let p = kv.fork(root).unwrap();
        kv.pin(p).unwrap();
        kv.extend(p, 50 + (i as u64 * 37) % 400).unwrap();
        for _ in 0..children {
            let c = kv.fork(p).unwrap();
            items.push(OrderItem {
                index: items.len(),
                kv: c,
                parent_kv: Some(p),
                born_rank: rank,
            });
            rank += 1;
        }
    }
    (kv, items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Appendix A.2's local-optimality claim, verified by pairwise
    /// interchange: no single swap improves the greedy schedule's
    /// shared-prefix score.
    #[test]
    fn greedy_schedule_is_swap_optimal(
        parents in 2usize..6,
        children in 1usize..4,
        prompt in 32u64..256,
    ) {
        let (kv, items) = random_frontier(parents, children, prompt);
        let order = PrefixAwareOrder::new().order(&items, &kv);
        let score = PrefixAwareOrder::score(&order, &items, &kv);
        for i in 0..order.len() {
            for j in i + 1..order.len() {
                let mut swapped = order.clone();
                swapped.swap(i, j);
                let s = PrefixAwareOrder::score(&swapped, &items, &kv);
                prop_assert!(
                    s <= score,
                    "swap ({i},{j}) improved {score} -> {s}"
                );
            }
        }
    }

    /// The greedy schedule dominates random and worst-case orderings on
    /// the surrogate objective.
    #[test]
    fn greedy_dominates_alternatives(
        parents in 2usize..8,
        children in 1usize..5,
        seed in 0u64..50,
    ) {
        let (kv, items) = random_frontier(parents, children, 64);
        let aware = PrefixAwareOrder::new().order(&items, &kv);
        let rand = RandomOrder::new(seed).order(&items, &kv);
        let worst = WorstCaseOrder::new().order(&items, &kv);
        let s_aware = PrefixAwareOrder::score(&aware, &items, &kv);
        prop_assert!(s_aware >= PrefixAwareOrder::score(&rand, &items, &kv));
        prop_assert!(s_aware >= PrefixAwareOrder::score(&worst, &items, &kv));
    }
}

#[test]
fn queued_requests_preempt_speculation() {
    let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let sim = ServerSim::new(server, 8, SearchKind::BeamSearch);
    let problems = Dataset::Amc2023.problems(3, 13);
    let arrivals = ArrivalPattern::Burst { at: 0.0 }.schedule(&problems, 0);
    let served = sim.run(&arrivals).unwrap();
    // While requests queue behind, Phase 2 never engages.
    assert_eq!(served[0].outcome.stats.spec.spec_tokens, 0);
    assert_eq!(served[1].outcome.stats.spec.spec_tokens, 0);
    // The final request has an empty queue: speculation resumes.
    assert!(served[2].outcome.stats.spec.spec_tokens > 0);
    // FIFO with queueing delays.
    assert!(served[2].queue_delay() > served[1].queue_delay() - 1e-9);
}

#[test]
fn widely_spaced_arrivals_all_speculate() {
    let server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    let sim = ServerSim::new(server, 8, SearchKind::BeamSearch);
    let problems = Dataset::Amc2023.problems(3, 13);
    let arrivals = ArrivalPattern::Interactive.schedule(&problems, 0);
    let served = sim.run(&arrivals).unwrap();
    for r in &served {
        assert!(
            r.outcome.stats.spec.spec_tokens > 0,
            "idle system should speculate"
        );
        assert!(r.queue_delay() < 1e-9);
    }
}
