//! End-to-end integration across the whole stack: every model pairing,
//! dataset and search algorithm serves successfully, and FastTTS's
//! headline performance claims hold in aggregate.

use fasttts::metrics::Summary;
use fasttts::{Dataset, GpuDevice, ModelPairing, SearchKind, TtsServer};

#[test]
fn full_matrix_serves() {
    for pairing in [
        ModelPairing::pair_1_5b_1_5b(),
        ModelPairing::pair_1_5b_7b(),
        ModelPairing::pair_7b_1_5b(),
    ] {
        for dataset in [Dataset::Aime2024, Dataset::HumanEval] {
            let server = TtsServer::fasttts(GpuDevice::rtx4090(), pairing.clone());
            let problem = dataset.problems(1, 3)[0];
            let out = server
                .serve(&problem, 8, SearchKind::BeamSearch)
                .unwrap_or_else(|e| panic!("{} on {dataset}: {e}", pairing.label()));
            assert!(out.goodput() > 0.0);
            assert!(!out.stats.beams.is_empty());
        }
    }
}

#[test]
fn fasttts_wins_goodput_in_aggregate() {
    // The paper's headline: higher goodput across configurations. On a
    // small grid the geomean must clearly exceed 1.
    let mut speedups = Vec::new();
    for pairing in [ModelPairing::pair_1_5b_1_5b(), ModelPairing::pair_1_5b_7b()] {
        let base = TtsServer::vllm_baseline(GpuDevice::rtx4090(), pairing.clone());
        let fast = TtsServer::fasttts(GpuDevice::rtx4090(), pairing.clone());
        for n in [16usize, 64] {
            for problem in Dataset::Aime2024.problems(2, 23) {
                let b = base.serve(&problem, n, SearchKind::BeamSearch).unwrap();
                let f = fast.serve(&problem, n, SearchKind::BeamSearch).unwrap();
                speedups.push(f.goodput() / b.goodput());
            }
        }
    }
    let geomean = Summary::geomean(&speedups);
    assert!(
        geomean > 1.1,
        "aggregate speedup too small: {geomean:.2} ({speedups:?})"
    );
}

#[test]
fn fasttts_cuts_verifier_latency_sharply() {
    // Paper Sec. 6.2: verifier latency reduced by 75-85% on average.
    let pairing = ModelPairing::pair_1_5b_7b();
    let base = TtsServer::vllm_baseline(GpuDevice::rtx4090(), pairing.clone());
    let fast = TtsServer::fasttts(GpuDevice::rtx4090(), pairing);
    let problem = Dataset::Aime2024.problems(1, 29)[0];
    let b = base.serve(&problem, 64, SearchKind::BeamSearch).unwrap();
    let f = fast.serve(&problem, 64, SearchKind::BeamSearch).unwrap();
    let cut = 1.0 - f.stats.breakdown().verifier / b.stats.breakdown().verifier;
    assert!(cut > 0.5, "verifier cut only {:.0}%", 100.0 * cut);
}

#[test]
fn memory_constrained_setting_serves_at_forty_percent() {
    // The paper's 1.5B+1.5B configuration restricts the system to 40% of
    // GPU memory (Sec. 6.1).
    let mut server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    server.config_mut().memory_fraction = 0.4;
    let problem = Dataset::Amc2023.problems(1, 31)[0];
    let out = server.serve(&problem, 64, SearchKind::BeamSearch).unwrap();
    assert!(out.goodput() > 0.0);
}

#[test]
fn accuracy_bands_match_the_paper() {
    // Coarse accuracy sanity on small samples: AMC clearly easier than
    // AIME; the 7B generator clearly better than the 1.5B one.
    let count_correct = |pairing: ModelPairing, dataset: Dataset| -> usize {
        let server = TtsServer::fasttts(GpuDevice::rtx4090(), pairing);
        dataset
            .problems(12, 53)
            .iter()
            .filter(|p| {
                server
                    .serve(p, 16, SearchKind::BeamSearch)
                    .unwrap()
                    .top1_correct()
            })
            .count()
    };
    let amc_small = count_correct(ModelPairing::pair_1_5b_1_5b(), Dataset::Amc2023);
    let aime_small = count_correct(ModelPairing::pair_1_5b_1_5b(), Dataset::Aime2024);
    let amc_big = count_correct(ModelPairing::pair_7b_1_5b(), Dataset::Amc2023);
    assert!(
        amc_small > aime_small,
        "AMC {amc_small} vs AIME {aime_small}"
    );
    assert!(amc_big >= amc_small, "7B {amc_big} vs 1.5B {amc_small}");
}
