//! Miniature versions of the paper's figure-level claims, run as fast
//! regression tests so the benches can't silently drift.

use fasttts::engine::SpecConfig;
use fasttts::{
    AblationFlags, Dataset, GpuDevice, ModelPairing, ModelSpec, Roofline, SearchKind, TtsServer,
};

#[test]
fn fig6_prefill_saturates_long_before_decode() {
    let roof = Roofline::new(GpuDevice::rtx4090(), ModelSpec::qwen25_math_1_5b());
    let gb = 1u64 << 30;
    let b_pre = roof.max_decode_batch(gb, 640).max(1);
    let b_dec = roof.max_decode_batch(gb, 512).max(1);
    let pre_frac = roof.prefill_throughput(b_pre, 640)
        / roof.prefill_throughput(roof.max_decode_batch(24 * gb, 640), 640);
    let dec_frac = roof.decode_throughput(b_dec, 512)
        / roof.decode_throughput(roof.max_decode_batch(24 * gb, 512), 512);
    assert!(pre_frac > 0.8, "prefill at 1 GB: {pre_frac:.2}");
    assert!(dec_frac < 0.8, "decode at 1 GB: {dec_frac:.2}");
}

#[test]
fn fig16_ablation_ladder_is_cumulative() {
    // P ≤ P+M ≤ P+M+S in goodput (allowing small noise at each rung).
    let problem = Dataset::Aime2024.problems(1, 71)[0];
    let mut goodputs = Vec::new();
    let base = TtsServer::with_flags(
        GpuDevice::rtx4090(),
        ModelPairing::pair_1_5b_7b(),
        AblationFlags::baseline(),
    );
    let bg = base
        .serve(&problem, 64, SearchKind::BeamSearch)
        .unwrap()
        .goodput();
    for (_, flags) in AblationFlags::ladder() {
        let server =
            TtsServer::with_flags(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b(), flags);
        goodputs.push(
            server
                .serve(&problem, 64, SearchKind::BeamSearch)
                .unwrap()
                .goodput(),
        );
    }
    assert!(
        goodputs[0] >= bg * 0.95,
        "P should not lose: {goodputs:?} vs {bg}"
    );
    assert!(goodputs[2] > goodputs[0], "S must add over P: {goodputs:?}");
    assert!(
        goodputs[2] > bg * 1.2,
        "full ladder must clearly win: {goodputs:?} vs {bg}"
    );
}

#[test]
fn fig17_truncation_ratio_high_beats_zero() {
    let problem = Dataset::Aime2024.problems(1, 81)[0];
    let run = |r: f64| {
        let mut server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
        server.config_mut().spec = SpecConfig {
            truncation_ratio: r,
            ..SpecConfig::fasttts_default()
        };
        server
            .serve(&problem, 64, SearchKind::BeamSearch)
            .unwrap()
            .goodput()
    };
    let r0 = run(0.0);
    let r85 = run(0.85);
    assert!(
        r85 > r0,
        "retaining speculative work must help: R=0.85 {r85:.1} vs R=0 {r0:.1}"
    );
}

#[test]
fn fig4_verification_utilization_exceeds_generation() {
    let mut server = TtsServer::vllm_baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    server.config_mut().trace = true;
    let problem = Dataset::Aime2024.problems(1, 5)[0];
    let out = server.serve(&problem, 32, SearchKind::BeamSearch).unwrap();
    let trace = out.stats.trace.unwrap();
    let g = trace.mean_util(Some(fasttts::hw::Phase::Generation));
    let v = trace.mean_util(Some(fasttts::hw::Phase::Verification));
    assert!(v > 2.0 * g, "verify {v:.2} vs generate {g:.2}");
}

#[test]
fn fig12_speedup_grows_with_n() {
    let problem = Dataset::Aime2024.problems(1, 12)[0];
    let pairing = ModelPairing::pair_1_5b_7b();
    let base = TtsServer::vllm_baseline(GpuDevice::rtx4090(), pairing.clone());
    let fast = TtsServer::fasttts(GpuDevice::rtx4090(), pairing);
    let speedup = |n: usize| {
        let b = base
            .serve(&problem, n, SearchKind::BeamSearch)
            .unwrap()
            .goodput();
        let f = fast
            .serve(&problem, n, SearchKind::BeamSearch)
            .unwrap()
            .goodput();
        f / b
    };
    let small = speedup(8);
    let large = speedup(128);
    assert!(small > 1.0, "even n=8 must win: {small:.2}");
    assert!(
        large > small,
        "gain must grow with n: {small:.2} -> {large:.2}"
    );
}
