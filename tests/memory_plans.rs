//! Memory-allocation behaviour across devices and budgets: plans always
//! fit, offloading rescues tiny budgets, and infeasible configurations
//! fail loudly instead of thrashing forever.

use fasttts::engine::{MemoryPlanner, PlanContext, StaticSplitPlanner};
use fasttts::{
    AblationFlags, Dataset, EngineConfig, GpuDevice, ModelPairing, RooflinePlanner, SearchKind,
    TtsServer,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both planners always return plans within budget, for any state.
    #[test]
    fn planners_respect_budgets(
        budget_mb in 64u64..16_384,
        n in 1usize..512,
        avg_ctx in 128u64..4096,
        step in 16u64..1024,
        caching in any::<bool>(),
    ) {
        let cfg = EngineConfig::baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_7b());
        let ctx = PlanContext {
            kv_budget_bytes: budget_mb * 1024 * 1024,
            n_beams: n,
            avg_ctx,
            step_tokens: step,
            ver_seq: avg_ctx + step,
            tree_tokens: n as u64 * step + avg_ctx,
            ver_caching: caching,
        };
        let mut static_split = StaticSplitPlanner;
        prop_assert!(static_split.plan(&cfg, &ctx).fits(ctx.kv_budget_bytes));
        let mut roofline = RooflinePlanner::new();
        prop_assert!(roofline.plan(&cfg, &ctx).fits(ctx.kv_budget_bytes));
        let mut offload = RooflinePlanner::with_offload();
        prop_assert!(offload.plan(&cfg, &ctx).fits(ctx.kv_budget_bytes));
    }
}

#[test]
fn offloading_rescues_the_3070ti() {
    // On 8 GB the two 1.5B models leave ~0.5-1 GB of KV; FastTTS with
    // offloading must still serve a real search.
    let device = GpuDevice::rtx3070ti();
    let mut server = TtsServer::with_flags(
        device,
        ModelPairing::pair_1_5b_1_5b(),
        AblationFlags::fasttts_offload(),
    );
    server.config_mut().memory_fraction = 0.93;
    let problem = Dataset::Aime2024.problems(1, 41)[0];
    let out = server
        .serve(&problem, 16, SearchKind::BeamSearch)
        .expect("must serve");
    assert!(out.goodput() > 0.0);
}

#[test]
fn infeasible_budget_errors_instead_of_hanging() {
    let mut server = TtsServer::vllm_baseline(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b());
    server.config_mut().memory_fraction = 0.26; // weights alone exceed this
    let problem = Dataset::Aime2024.problems(1, 43)[0];
    let result = server.serve(&problem, 8, SearchKind::BeamSearch);
    assert!(result.is_err());
    let msg = result.unwrap_err().to_string();
    assert!(msg.contains("KV blocks"), "unhelpful error: {msg}");
}

#[test]
fn dynamic_replanning_tracks_frontier_growth() {
    // The roofline planner is invoked per iteration; a larger frontier
    // must never produce a plan that breaks the budget.
    let mut server = TtsServer::fasttts(GpuDevice::rtx4090(), ModelPairing::pair_7b_1_5b());
    server.config_mut().memory_fraction = 0.9;
    let problem = Dataset::Aime2024.problems(1, 47)[0];
    for n in [8usize, 64, 256] {
        let out = server
            .serve(&problem, n, SearchKind::BeamSearch)
            .expect("serve");
        assert!(out.goodput() > 0.0, "n={n}");
    }
}
