//! The paper's central correctness claim, tested as a property: FastTTS
//! is *algorithmically equivalent* to the baseline — same reasoning
//! tree, same scores, same answers — under arbitrary configurations.
//! Only the timeline may differ.

use fasttts::{AblationFlags, Dataset, GpuDevice, ModelPairing, SearchKind, TtsServer};
use proptest::prelude::*;

fn serve(
    flags: AblationFlags,
    dataset: Dataset,
    pidx: usize,
    n: usize,
    kind: SearchKind,
    seed: u64,
) -> fasttts::ServeOutcome {
    let mut server =
        TtsServer::with_flags(GpuDevice::rtx4090(), ModelPairing::pair_1_5b_1_5b(), flags);
    server.config_mut().seed = seed;
    let problem = dataset.problems(pidx + 1, 17)[pidx];
    server.serve(&problem, n, kind).expect("serve")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fasttts_preserves_outcomes_exactly(
        pidx in 0usize..6,
        n in prop::sample::select(vec![8usize, 16, 32]),
        kind in prop::sample::select(vec![
            SearchKind::BeamSearch,
            SearchKind::Dvts,
            SearchKind::DynamicBranching,
        ]),
        dataset in prop::sample::select(vec![Dataset::Aime2024, Dataset::Amc2023]),
        seed in 0u64..1000,
    ) {
        let base = serve(AblationFlags::baseline(), dataset, pidx, n, kind, seed);
        let fast = serve(AblationFlags::fasttts(), dataset, pidx, n, kind, seed);
        prop_assert_eq!(base.beams().len(), fast.beams().len());
        for (b, f) in base.beams().iter().zip(fast.beams()) {
            prop_assert_eq!(b.tokens, f.tokens, "path lengths");
            prop_assert_eq!(b.answer, f.answer, "answers");
            prop_assert_eq!(b.score, f.score, "scores");
            prop_assert_eq!(b.correct, f.correct);
        }
        prop_assert_eq!(base.answer, fast.answer, "majority vote");
    }

    #[test]
    fn every_single_flag_is_outcome_neutral(
        pidx in 0usize..4,
        seed in 0u64..100,
    ) {
        let combos = [
            AblationFlags { prefix_aware: true, ..AblationFlags::baseline() },
            AblationFlags { asym_memory: true, ..AblationFlags::baseline() },
            AblationFlags { speculation: true, ..AblationFlags::baseline() },
        ];
        let base = serve(AblationFlags::baseline(), Dataset::Amc2023, pidx, 16, SearchKind::BeamSearch, seed);
        for flags in combos {
            let other = serve(flags, Dataset::Amc2023, pidx, 16, SearchKind::BeamSearch, seed);
            prop_assert_eq!(base.answer, other.answer, "{:?}", flags);
            prop_assert_eq!(base.beams().len(), other.beams().len());
        }
    }
}

/// Convenience accessor used by the property tests.
trait Beams {
    fn beams(&self) -> &[fasttts::metrics::BeamOutcome];
}

impl Beams for fasttts::ServeOutcome {
    fn beams(&self) -> &[fasttts::metrics::BeamOutcome] {
        &self.stats.beams
    }
}
